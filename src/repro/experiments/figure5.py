"""Figure 5 — outbreak simulations and the blindness of distributed
detection.

* (a) **Hit-list infection rate**: the CodeRedII-based hit-list worm
  released over the synthetic vulnerable population (134,586 hosts in
  47 /8s, 25 seeds, 10 scans/s) with hit-lists of 10/100/1000/4481
  /16s.  The smallest list infects its (small) reachable population
  fastest; the largest reaches everyone but more slowly.
* (b) **Hit-list detection rate**: one /24 sensor in each of the 4481
  vulnerable /16s, alerting after 5 payloads.  Hotspots starve most
  sensors: even at >90% infected only a small fraction have alerted,
  so any quorum rule above that fraction never fires.
* (c) **NATs and sensor placement**: the CodeRedII-type worm with 15%
  of vulnerable hosts NATed at 192.168/16, against three placements —
  10,000 random /24s, 10,000 random /24s inside the top-20 /8s, and
  one /24 per /16 of 192/8 (avoiding 192.168/16).  Random placement
  is slow; population-aware placement helps; the 192/8 placement
  alerts everywhere before the worm reaches 20% of the population.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Mapping, Optional, Sequence, Union

import numpy as np

from repro.env.environment import NetworkEnvironment
from repro.net.cidr import BlockSet, CIDRBlock
from repro.population.model import HostPopulation
from repro.population.synthesis import (
    PopulationSpec,
    as_population_spec,
    nat_population,
    synthesize_clustered_population,
)
from repro.sensors.deployment import (
    SensorGrid,
    place_one_per_block,
    place_random,
    place_within_blocks,
)
from repro.sensors.detection import AlertTimeline
from repro.runtime import Trial, TrialRunner, as_seed_sequence
from repro.sim.engine import SimulationResult
from repro.sim.spec import SimulationSpec, simulate
from repro.worms.codered2 import CodeRedIIWorm
from repro.worms.hitlist import HitListCodeRedIIWorm, build_greedy_hitlist

HITLIST_SIZES = (10, 100, 1000, 4481)
ALERT_THRESHOLD = 5


@dataclass(frozen=True)
class HitlistRun:
    """One hit-list size's outbreak and detection outcome."""

    num_prefixes: int
    coverage: float
    result: SimulationResult
    alert_timeline: AlertTimeline
    sensors_alerted_at_90pct: Optional[float]


@dataclass(frozen=True)
class Figure5ABResult:
    """Figure 5(a) infection curves and 5(b) detection curves."""

    runs: tuple[HitlistRun, ...]
    total_slash16s: int

    @property
    def small_list_fastest(self) -> bool:
        """Smaller hit-lists saturate their reachable hosts sooner."""
        times = []
        for run in self.runs:
            target = 0.9 * run.coverage
            times.append(run.result.time_to_fraction(target))
        return all(
            earlier is not None and (later is None or earlier <= later)
            for earlier, later in zip(times, times[1:])
        )

    @property
    def large_list_reaches_more(self) -> bool:
        """Bigger hit-lists infect a larger final fraction."""
        finals = [run.result.final_fraction_infected for run in self.runs]
        return all(a <= b + 0.02 for a, b in zip(finals, finals[1:]))

    @property
    def detection_starved(self) -> bool:
        """Sensors outside the hit-list never alert.

        For every partial hit-list, the final alert fraction stays at
        (or below) the list's share of monitored /16s — so a quorum
        rule demanding more than that share can never fire, no matter
        how far the infection progresses.  At paper scale the 1000-
        prefix list infects >90% of the population while only
        1000/4481 ≈ 22% of sensors alert — the paper's "only slightly
        more than 20% of the detectors have alerted".
        """
        checks = []
        for run in self.runs:
            share = min(run.num_prefixes / self.total_slash16s, 1.0)
            if share >= 0.99:
                continue
            checks.append(
                run.alert_timeline.final_fraction() <= share * 1.3 + 0.02
            )
        return bool(checks) and all(checks)


def _hitlist_trial(
    base_population: np.ndarray,
    num_prefixes: int,
    scan_rate: float,
    seed_count: int,
    max_time: float,
    seed: "np.random.SeedSequence | int",
    shards: Optional[int] = None,
    shard_workers: int = 1,
    shard_transport: str = "ring",
    checkpoint_every: Optional[int] = None,
    checkpoint_dir: Optional[str] = None,
    restore_from: Optional[str] = None,
) -> HitlistRun:
    """One hit-list size's outbreak and detection outcome.

    Module-level so the trial runner can ship it to pool workers; the
    RNG builds from the seed material here, on whichever process runs
    the trial, so serial and parallel campaigns match bitwise.
    ``shards`` selects the sharded engine (identical results — the
    exchange contract), so internet-scale populations can split their
    per-tick work, and ``shard_workers`` fans those shards out over a
    process pool (supervised — respawn from the latest checkpoint —
    when checkpointing is on; ``shard_transport`` picks the pool's
    wire, see :func:`repro.sim.spec.simulate`).
    ``checkpoint_every``/``checkpoint_dir``
    snapshot
    mid-run state (per hit-list size, in a ``hitlist-<N>`` subdir),
    and ``restore_from`` resumes from the latest snapshot there —
    again bitwise-identical to an uninterrupted run.
    """
    rng = np.random.default_rng(seed)
    hitlist, coverage = build_greedy_hitlist(base_population, num_prefixes)
    worm = HitListCodeRedIIWorm(hitlist)
    # One /24 sensor in every vulnerable /16 (the 5(b) deployment).
    vulnerable_16s = [
        CIDRBlock(int(prefix) << 16, 16)
        for prefix in np.unique(base_population >> 16)
    ]
    grid = SensorGrid(
        place_one_per_block(vulnerable_16s, rng),
        alert_threshold=ALERT_THRESHOLD,
    )
    # Seed inside the hit-list so the outbreak can actually start.
    seeds = rng.choice(
        base_population[hitlist.contains_array(base_population)],
        size=seed_count,
        replace=False,
    )
    spec = SimulationSpec(
        worm=worm,
        population=HostPopulation(base_population),
        sensor_grids=(grid,),
        scan_rate=scan_rate,
        max_time=max_time,
        seed_count=seed_count,
        stop_at_fraction=min(0.97 * coverage, 1.0),
        shards=shards,
        seed_addrs=seeds,
        checkpoint_every=checkpoint_every,
    )
    # Each hit-list size is an independent simulation, so each gets
    # its own checkpoint subdirectory.
    subdir = f"hitlist-{num_prefixes}"
    result = simulate(
        spec,
        rng,
        shard_workers=shard_workers,
        shard_transport=shard_transport,
        checkpoint_dir=(
            os.path.join(checkpoint_dir, subdir)
            if checkpoint_dir is not None
            else None
        ),
        restore_from=(
            os.path.join(restore_from, subdir)
            if restore_from is not None
            else None
        ),
    )

    timeline = AlertTimeline.from_alert_times(
        grid.alert_times(), horizon=result.times[-1]
    )
    t90 = result.time_to_fraction(0.9 * coverage)
    alerted_at_90 = timeline.fraction_at(t90) if t90 is not None else None
    return HitlistRun(
        num_prefixes=num_prefixes,
        coverage=coverage,
        result=result,
        alert_timeline=timeline,
        sensors_alerted_at_90pct=alerted_at_90,
    )


def run_infection(
    population_spec: Union[PopulationSpec, Mapping[str, object], None] = None,
    hitlist_sizes: Sequence[int] = HITLIST_SIZES,
    scan_rate: float = 10.0,
    seed_count: int = 25,
    max_time: float = 2_000.0,
    seed: "int | np.random.SeedSequence" = 2005,
    workers: int = 1,
    shards: Optional[int] = None,
    shard_workers: int = 1,
    shard_transport: str = "ring",
    checkpoint_every: Optional[int] = None,
    checkpoint_dir: Optional[str] = None,
    restore_from: Optional[str] = None,
) -> Figure5ABResult:
    """Figure 5(a) and (b) in one pass: infect and observe.

    Each hit-list size is an independent simulation under its own
    ``SeedSequence`` child, so the per-size runs fan out over
    ``workers`` processes with results identical to the serial loop.
    ``shards`` additionally splits each simulation's address space
    across that many shard engines — numerically a no-op (the sharded
    engine is bitwise-equal to the serial reference).
    ``checkpoint_every``/``checkpoint_dir``/``restore_from`` snapshot
    and resume each per-size simulation mid-run (also a no-op on
    results — see :mod:`repro.runtime.checkpoint`).
    """
    spec = as_population_spec(population_spec)
    population_seq, *size_seqs = as_seed_sequence(seed).spawn(
        len(tuple(hitlist_sizes)) + 1
    )
    rng = np.random.default_rng(population_seq)
    base_population = synthesize_clustered_population(spec, rng)

    trials = [
        Trial(
            func=_hitlist_trial,
            kwargs=dict(
                base_population=base_population,
                num_prefixes=num_prefixes,
                scan_rate=scan_rate,
                seed_count=seed_count,
                max_time=max_time,
                shards=shards,
                shard_workers=shard_workers,
                shard_transport=shard_transport,
                checkpoint_every=checkpoint_every,
                checkpoint_dir=checkpoint_dir,
                restore_from=restore_from,
            ),
            seed=size_seq,
            label=f"hitlist[{num_prefixes}]",
        )
        for num_prefixes, size_seq in zip(hitlist_sizes, size_seqs)
    ]
    runs = TrialRunner(workers=workers).run(trials)
    total_slash16s = len(np.unique(base_population >> 16))
    return Figure5ABResult(runs=tuple(runs), total_slash16s=total_slash16s)


def format_infection(result: Figure5ABResult) -> str:
    """Figure 5(a) as a table of infection milestones."""
    lines = [
        "Hit-list infection rate (CodeRedII-based, 25 seeds, 10 scans/s):"
    ]
    for run in result.runs:
        half = run.result.time_to_fraction(0.5 * run.coverage)
        lines.append(
            f"  {run.num_prefixes:>5} prefixes  coverage={run.coverage:5.1%}  "
            f"t(50% of reachable)={half if half is not None else '>horizon'}s  "
            f"final={run.result.final_fraction_infected:5.1%}"
        )
    lines.append(
        f"  small list fastest? {result.small_list_fastest}; "
        f"large list reaches more? {result.large_list_reaches_more}"
    )
    return "\n".join(lines)


#: Figure 5(b) shares the run with 5(a); its formatter reports the
#: sensor side.  The signature is spelled out (rather than ``**kwargs``)
#: so the registry can introspect defaults for ``--list`` and cache
#: keys.
def run_detection(
    population_spec: Union[PopulationSpec, Mapping[str, object], None] = None,
    hitlist_sizes: Sequence[int] = HITLIST_SIZES,
    scan_rate: float = 10.0,
    seed_count: int = 25,
    max_time: float = 2_000.0,
    seed: "int | np.random.SeedSequence" = 2005,
    workers: int = 1,
    shards: Optional[int] = None,
    shard_workers: int = 1,
    shard_transport: str = "ring",
    checkpoint_every: Optional[int] = None,
    checkpoint_dir: Optional[str] = None,
    restore_from: Optional[str] = None,
) -> Figure5ABResult:
    """Figure 5(b) — same simulation, detection view."""
    return run_infection(
        population_spec=population_spec,
        hitlist_sizes=hitlist_sizes,
        scan_rate=scan_rate,
        seed_count=seed_count,
        max_time=max_time,
        seed=seed,
        workers=workers,
        shards=shards,
        shard_workers=shard_workers,
        shard_transport=shard_transport,
        checkpoint_every=checkpoint_every,
        checkpoint_dir=checkpoint_dir,
        restore_from=restore_from,
    )


def format_detection(result: Figure5ABResult) -> str:
    """Figure 5(b) as alert fractions at the 90%-infected milestone."""
    lines = [
        f"Sensor detection rate ({result.total_slash16s} /24 sensors, "
        "alert at 5 payloads):"
    ]
    for run in result.runs:
        alerted = run.sensors_alerted_at_90pct
        share = min(run.num_prefixes / result.total_slash16s, 1.0)
        lines.append(
            f"  {run.num_prefixes:>5} prefixes (share {share:5.1%}): "
            f"alerted at 90%-of-reachable infected = "
            f"{f'{alerted:.1%}' if alerted is not None else 'n/a'}"
            f", final = {run.alert_timeline.final_fraction():.1%}"
        )
    lines.append(f"  detection starved? {result.detection_starved}")
    return "\n".join(lines)


@dataclass(frozen=True)
class PlacementRun:
    """One sensor-placement strategy's alert curve."""

    name: str
    num_sensors: int
    timeline: AlertTimeline
    alerted_at_20pct_infected: float


@dataclass(frozen=True)
class Figure5CResult:
    """Figure 5(c): placement strategies against the NATed worm."""

    placements: tuple[PlacementRun, ...]
    result: SimulationResult

    def placement(self, name: str) -> PlacementRun:
        """Look one strategy up by name."""
        for run in self.placements:
            if run.name == name:
                return run
        raise KeyError(name)

    @property
    def targeted_placement_wins(self) -> bool:
        """The 192/8 placement alerts fully before 20% infected,
        while random placement lags far behind."""
        targeted = self.placement("192/8 per-/16")
        random_wide = self.placement("random")
        return (
            targeted.alerted_at_20pct_infected > 0.95
            and random_wide.alerted_at_20pct_infected
            < targeted.alerted_at_20pct_infected
        )


def run_nat_detection(
    population_spec: Union[PopulationSpec, Mapping[str, object], None] = None,
    nat_fraction: float = 0.15,
    num_random_sensors: int = 10_000,
    scan_rate: float = 10.0,
    seed_count: int = 25,
    max_time: float = 1_200.0,
    stop_at_fraction: float = 0.5,
    seed: int = 2006,
    stratify_nat_seeds: bool = False,
    shards: Optional[int] = None,
) -> Figure5CResult:
    """Figure 5(c): one outbreak, three sensor deployments.

    ``stratify_nat_seeds`` forces the seed set to include NATed hosts
    in proportion to ``nat_fraction`` (at least one).  The paper
    seeds uniformly; stratification matters for small populations or
    fractions, where an unlucky draw can leave the NATed
    subpopulation unreachable (private hosts are only infectable from
    private space) and the experiment degenerates.
    """
    spec = as_population_spec(population_spec)
    rng = np.random.default_rng(seed)
    base_population = synthesize_clustered_population(spec, rng)
    addrs, nat = nat_population(base_population, nat_fraction, rng)
    population = HostPopulation(addrs)
    environment = NetworkEnvironment(nat=nat)

    # Placement 1: random /24s across the whole IPv4 space.
    grid_random = SensorGrid(
        place_random(num_random_sensors, rng), alert_threshold=ALERT_THRESHOLD
    )
    # Placement 2: random /24s inside the top-20 /8s by (pre-NAT)
    # vulnerable population — "organizations ... collaboratively
    # determine where potentially vulnerable hosts were located".
    per8 = np.bincount(base_population >> 24, minlength=256)
    top_octets = np.argsort(per8)[::-1][:20]
    top_blocks = BlockSet(
        CIDRBlock(int(octet) << 24, 8) for octet in top_octets if per8[octet]
    )
    grid_top20 = SensorGrid(
        place_random(num_random_sensors, rng, within=top_blocks),
        alert_threshold=ALERT_THRESHOLD,
    )
    # Placement 3: one /24 per /16 of 192/8, avoiding 192.168/16.
    slash16s = CIDRBlock.parse("192.0.0.0/8").subblocks(16)
    grid_192 = SensorGrid(
        place_within_blocks(
            slash16s, rng, exclude=BlockSet.parse(["192.168.0.0/16"])
        ),
        alert_threshold=ALERT_THRESHOLD,
    )

    worm = CodeRedIIWorm()
    seed_addrs = None
    if stratify_nat_seeds and nat.num_hosts:
        from repro.net.special import is_private

        private_mask = is_private(addrs)
        num_nat_seeds = min(
            max(1, round(seed_count * nat_fraction)), int(private_mask.sum())
        )
        seed_addrs = np.concatenate(
            [
                rng.choice(addrs[private_mask], num_nat_seeds, replace=False),
                rng.choice(
                    addrs[~private_mask],
                    seed_count - num_nat_seeds,
                    replace=False,
                ),
            ]
        )
    sim_spec = SimulationSpec(
        worm=worm,
        population=population,
        environment=environment,
        sensor_grids=(grid_random, grid_top20, grid_192),
        scan_rate=scan_rate,
        max_time=max_time,
        seed_count=seed_count,
        stop_at_fraction=stop_at_fraction,
        shards=shards,
        seed_addrs=seed_addrs,
    )
    result = simulate(sim_spec, rng)

    t20 = result.time_to_fraction(0.20)
    horizon = float(result.times[-1])
    placements = []
    for name, grid in (
        ("random", grid_random),
        ("top-20 /8s", grid_top20),
        ("192/8 per-/16", grid_192),
    ):
        timeline = AlertTimeline.from_alert_times(grid.alert_times(), horizon)
        at_20 = timeline.fraction_at(t20) if t20 is not None else 0.0
        placements.append(
            PlacementRun(
                name=name,
                num_sensors=grid.num_sensors,
                timeline=timeline,
                alerted_at_20pct_infected=at_20,
            )
        )
    return Figure5CResult(placements=tuple(placements), result=result)


def format_nat_detection(result: Figure5CResult) -> str:
    """Figure 5(c) as alert fractions at the 20%-infected milestone."""
    lines = [
        "Sensor placement vs NATed CodeRedII-type worm "
        f"(final infected {result.result.final_fraction_infected:.1%}):"
    ]
    for run in result.placements:
        lines.append(
            f"  {run.name:<14} ({run.num_sensors:>5} sensors): "
            f"alerted at 20% infected = {run.alerted_at_20pct_infected:.1%}, "
            f"final = {run.timeline.final_fraction():.1%}"
        )
    lines.append(f"  targeted placement wins? {result.targeted_placement_wins}")
    return "\n".join(lines)
