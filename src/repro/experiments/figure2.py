"""Figure 2 — unique Slammer-infected sources by destination /24.

Reproduces the aggregate Slammer observation pattern:

* the **M block sees nothing** — its upstream provider filtered the
  worm (an environmental factor);
* the **H block sees systematically fewer unique sources** than the
  D and I blocks — an algorithmic factor: H's first two octets pin
  the LCG state's low 16 bits to a value whose 2-adic offset from
  the generator's fixed points puts all of H on *short* cycles, so
  fewer infected hosts ever scan it;
* the analytic cycle-structure prediction (the paper's cycle-length
  sums for D, H, I) matches the simulated counts.

The paper's true block locations are confidential; we place D and I
at positions whose pinned low bits give valuation 0 (cycles of
length 2^30) and H at valuation 2 (cycles of length 2^28) under
every ``b`` version, reproducing the "clear bias away from the H
block".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.analysis.slammer_cycles import (
    expected_unique_sources_per_slash24,
    slash16_observation_scores,
)
from repro.net.cidr import CIDRBlock
from repro.prng.cycles import cycle_structure
from repro.worms.slammer import SLAMMER_A, SLAMMER_B_VALUES, address_to_state


@dataclass(frozen=True)
class Figure2Result:
    """Per-block observed and predicted unique-source counts."""

    blocks: Mapping[str, CIDRBlock]
    observed_by_slash24: Mapping[str, np.ndarray]
    predicted_by_slash24: Mapping[str, np.ndarray]
    m_block_observed: int

    def observed_total(self, name: str) -> int:
        """Total unique sources over one block (summed across /24s)."""
        return int(self.observed_by_slash24[name].sum())

    def observed_per_slash24_mean(self, name: str) -> float:
        """Mean unique sources per /24 (block sizes differ)."""
        return float(self.observed_by_slash24[name].mean())

    @property
    def h_deficit_reproduced(self) -> bool:
        """H observes markedly fewer sources per /24 than D and I."""
        h = self.observed_per_slash24_mean("H")
        return (
            h < 0.75 * self.observed_per_slash24_mean("D")
            and h < 0.75 * self.observed_per_slash24_mean("I")
        )


#: First octets never used for synthetic sensor positions.
_FORBIDDEN_OCTETS = frozenset({0, 10, 127, 172, 192} | set(range(224, 256)))


def paper_block_positions(
    probes_per_host: int = 4_000_000,
) -> dict[str, CIDRBlock]:
    """Synthetic D/20, H/18, I/17 positions with contrasting cycles.

    D and I take the two highest-scoring (hottest) /16 positions and
    H the lowest-scoring (coldest) one, mirroring the paper's blocks
    whose real locations are confidential.
    """
    scores = slash16_observation_scores(probes_per_host)
    order = np.argsort(scores)

    def to_block(low16: int, prefix_len: int) -> CIDRBlock:
        octet_a = low16 & 0xFF
        octet_b = (low16 >> 8) & 0xFF
        return CIDRBlock.containing((octet_a << 24) | (octet_b << 16), prefix_len)

    def pick(ranks: np.ndarray, prefix_len: int, avoid: list[CIDRBlock]) -> CIDRBlock:
        for low16 in ranks:
            if (low16 & 0xFF) in _FORBIDDEN_OCTETS:
                continue
            block = to_block(int(low16), prefix_len)
            if not any(block.overlaps(existing) for existing in avoid):
                return block
        raise RuntimeError("no usable block position found")

    d_block = pick(order[::-1], 20, avoid=[])
    i_block = pick(order[::-1], 17, avoid=[d_block])
    h_block = pick(order, 18, avoid=[d_block, i_block])
    return {"D": d_block, "H": h_block, "I": i_block}


def run(
    num_hosts: int = 30_000,
    probes_per_host: int = 4_000_000,
    monte_carlo: bool = True,
    seed: int = 2004,
) -> Figure2Result:
    """Predict and (optionally) Monte-Carlo the per-/24 counts.

    The Monte Carlo samples each host's seed, computes which cycle it
    joins, and scores each sensor /24 against the host's coverage of
    that cycle — no per-probe work, so paper-scale host counts and
    month-scale probe budgets are exact and fast.
    """
    rng = np.random.default_rng(seed)
    blocks = paper_block_positions()
    blocks["M"] = CIDRBlock.parse("192.5.40.0/22")

    predicted = {
        name: expected_unique_sources_per_slash24(
            block.slash24_prefixes(), num_hosts, probes_per_host
        )
        for name, block in blocks.items()
    }
    predicted["M"] = np.zeros(len(blocks["M"].slash24_prefixes()))  # filtered

    observed: dict[str, np.ndarray] = {}
    if monte_carlo:
        structures = {
            b: cycle_structure(SLAMMER_A, b, bits=32) for b in SLAMMER_B_VALUES
        }
        host_b = rng.choice(len(SLAMMER_B_VALUES), size=num_hosts)
        host_seeds = rng.integers(0, 2**32, size=num_hosts, dtype=np.uint64)
        for name, block in blocks.items():
            prefixes = block.slash24_prefixes()
            counts = np.zeros(len(prefixes), dtype=np.int64)
            if name == "M":
                observed[name] = counts  # upstream filters Slammer
                continue
            states = address_to_state(
                (prefixes.astype(np.uint32) << np.uint32(8)).astype(np.uint32)
            )
            for b_index, b in enumerate(SLAMMER_B_VALUES):
                structure = structures[b]
                mask = host_b == b_index
                seeds_b = host_seeds[mask]
                # Hosts observe a /24 iff they share its cycle and
                # their probe budget covers one of its 256 states.
                bin_ids = [structure.cycle_id_of_state(int(s)) for s in states]
                host_lengths = structure.cycle_lengths_of_states(seeds_b)
                host_ids = {}
                for host_index, host_seed in enumerate(seeds_b):
                    host_ids.setdefault(
                        structure.cycle_id_of_state(int(host_seed)), []
                    ).append(host_index)
                for bin_index, bin_id in enumerate(bin_ids):
                    members = host_ids.get(bin_id)
                    if not members:
                        continue
                    lengths = host_lengths[members]
                    coverage = np.minimum(
                        256.0 * probes_per_host / lengths, 1.0
                    )
                    hits = rng.random(len(members)) < coverage
                    counts[bin_index] += int(hits.sum())
            observed[name] = counts
    else:
        observed = {
            name: np.round(pred).astype(np.int64)
            for name, pred in predicted.items()
        }

    return Figure2Result(
        blocks=blocks,
        observed_by_slash24=observed,
        predicted_by_slash24=predicted,
        m_block_observed=int(observed["M"].sum()),
    )


def format_result(result: Figure2Result) -> str:
    """Figure 2 as per-block totals with the cycle prediction."""
    lines = ["Unique Slammer sources by destination block:"]
    for name, block in result.blocks.items():
        observed = result.observed_total(name)
        predicted = float(result.predicted_by_slash24[name].sum())
        lines.append(
            f"  {name} ({block}): observed={observed}  "
            f"cycle-theory predicted={predicted:.0f}"
        )
    lines.append(f"  M block filtered upstream: observed={result.m_block_observed}")
    lines.append(f"  H deficit reproduced? {result.h_deficit_reproduced}")
    return "\n".join(lines)
