"""Experiment registry: id → (runner, formatter).

Populated as each experiment module lands; the CLI and benchmark
harness look experiments up here so there is exactly one definition
of "run Figure 5b".
"""

from __future__ import annotations

import importlib
from typing import Any, Callable, Mapping

#: Experiment id → module path.  Each module exposes ``run`` and
#: ``format_result``.
EXPERIMENTS: Mapping[str, str] = {
    "table1": "repro.experiments.table1",
    "figure1": "repro.experiments.figure1",
    "figure2": "repro.experiments.figure2",
    "figure3": "repro.experiments.figure3",
    "figure4": "repro.experiments.figure4",
    "table2": "repro.experiments.table2",
    "figure5a": "repro.experiments.figure5",
    "figure5b": "repro.experiments.figure5",
    "figure5c": "repro.experiments.figure5",
    # Beyond the paper: quantify its concluding arguments.
    "local-detection": "repro.experiments.extension_local_detection",
    "containment": "repro.experiments.extension_containment",
}

#: Experiments living in a shared module use a dedicated run function.
_RUNNERS: Mapping[str, str] = {
    "figure5a": "run_infection",
    "figure5b": "run_detection",
    "figure5c": "run_nat_detection",
}

_FORMATTERS: Mapping[str, str] = {
    "figure5a": "format_infection",
    "figure5b": "format_detection",
    "figure5c": "format_nat_detection",
}


def get_runner(experiment_id: str) -> tuple[Callable[..., Any], Callable[[Any], str]]:
    """The (run, format) pair for an experiment id."""
    if experiment_id not in EXPERIMENTS:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; "
            f"known: {sorted(EXPERIMENTS)}"
        )
    module = importlib.import_module(EXPERIMENTS[experiment_id])
    run = getattr(module, _RUNNERS.get(experiment_id, "run"))
    formatter = getattr(module, _FORMATTERS.get(experiment_id, "format_result"))
    return run, formatter


def run_experiment(experiment_id: str, **kwargs: Any) -> tuple[Any, str]:
    """Run an experiment and return ``(result, formatted_text)``."""
    run, formatter = get_runner(experiment_id)
    result = run(**kwargs)
    return result, formatter(result)
