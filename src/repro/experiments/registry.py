"""Declarative experiment registry.

One :class:`Experiment` record per paper artifact — id, title, where
its runner and formatter live, default parameters, and its
trial-count knob.  The record is simultaneously:

* the lookup unit for the CLI (``hotspots figure5b``),
* the unit of parallel dispatch for
  :class:`~repro.runtime.runner.TrialRunner` (each Monte-Carlo trial
  is one ``Experiment`` invocation under a spawned child seed), and
* the identity under which results cache on disk.
"""

from __future__ import annotations

import dataclasses
import importlib
import inspect
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Optional

from repro.runtime.cache import ResultCache, stable_key
from repro.runtime.checkpoint import recovery_collection
from repro.runtime.journal import TrialJournal
from repro.runtime.perf import active_timings
from repro.runtime.report import RunReport
from repro.runtime.runner import RetryPolicy, Trial, TrialRunner
from repro.runtime.seeding import spawn_trial_sequences

Runner = Callable[..., Any]
Formatter = Callable[[Any], str]


@dataclass(frozen=True)
class Experiment:
    """One table or figure of the paper, as a runnable unit.

    Attributes
    ----------
    id:
        The CLI / registry identifier (``"figure5b"``).
    title:
        Human-readable name printed by ``hotspots --list``.
    module:
        Dotted path of the module holding the runner and formatter.
    runner / formatter:
        Attribute names inside ``module`` (several experiments share a
        module, so the names vary).
    defaults:
        Explicit parameter overrides applied under any caller
        overrides — the experiment's registry-level configuration.
    seed_param:
        The runner keyword that receives seed material; the trial
        runner injects per-trial ``SeedSequence`` children through it.
    default_trials:
        The trial-count knob: how many Monte-Carlo repetitions a plain
        ``hotspots <id>`` performs.
    """

    id: str
    title: str
    module: str
    runner: str = "run"
    formatter: str = "format_result"
    defaults: Mapping[str, Any] = field(default_factory=dict)
    seed_param: str = "seed"
    default_trials: int = 1

    # -- resolution --------------------------------------------------

    def resolve(self) -> tuple[Runner, Formatter]:
        """Import the module and return ``(run, format)`` callables."""
        module = importlib.import_module(self.module)
        return getattr(module, self.runner), getattr(module, self.formatter)

    def signature_defaults(self) -> dict[str, Any]:
        """The runner's own keyword defaults (for display and keys)."""
        run, _ = self.resolve()
        return {
            name: parameter.default
            for name, parameter in inspect.signature(run).parameters.items()
            if parameter.default is not inspect.Parameter.empty
        }

    def display_params(self) -> dict[str, Any]:
        """Effective defaults, registry overrides applied, for --list."""
        params = self.signature_defaults()
        params.update(self.defaults)
        return params

    def base_seed(self, overrides: Mapping[str, Any]) -> Any:
        """The campaign seed: caller override, else the runner default."""
        if self.seed_param in overrides:
            return overrides[self.seed_param]
        return self.display_params().get(self.seed_param)

    # -- execution ---------------------------------------------------

    def run(
        self,
        *,
        trials: Optional[int] = None,
        workers: Optional[int] = 1,
        cache: Optional[ResultCache] = None,
        retry: "RetryPolicy | int | None" = None,
        timeout: Optional[float] = None,
        journal_dir: Optional[str] = None,
        resume: bool = False,
        raise_on_failure: bool = True,
        **overrides: Any,
    ) -> "ExperimentRun":
        """Run the experiment's Monte-Carlo campaign.

        ``trials=1`` (the default for every paper artifact) calls the
        runner once with the caller's parameters, bit-identical to
        invoking the module function directly.  ``trials=n`` derives n
        per-trial seeds via ``SeedSequence(base_seed).spawn(n)`` and
        fans them out over ``workers`` processes; serial (``workers=1``)
        and parallel runs produce identical results.

        ``workers`` always parallelizes at the widest level available:
        across trials when ``trials > 1``, otherwise *inside* the
        single trial for runners that accept a ``workers`` keyword
        (the Figure 5 per-hit-list-size fan-out).  Worker count never
        changes results, so it never enters cache keys.

        Fault tolerance: ``retry`` (a :class:`RetryPolicy` or plain
        extra-attempt count) re-executes failed trials under their
        original seeds, ``timeout`` bounds each trial's runtime under
        parallel execution, and ``journal_dir``/``resume`` checkpoint
        completed trials so an interrupted campaign re-executes only
        what is unfinished.  None of these change results — every
        recovery path is bitwise-identical to a clean serial run —
        and all of them are accounted for in ``ExperimentRun.report``.
        ``raise_on_failure=False`` returns the partial campaign (with
        ``None`` slots) instead of raising
        :class:`~repro.runtime.report.TrialExecutionError`.
        """
        if trials is None:
            trials = self.default_trials
        if trials < 1:
            raise ValueError("trials must be at least 1")
        run_callable, _ = self.resolve()
        params = dict(self.defaults)
        params.update(overrides)
        if (
            trials == 1
            and "workers" not in params
            and "workers" in self.signature_defaults()
        ):
            params["workers"] = workers
        # Reject unknown/invalid parameters before dispatching: the
        # fault-tolerant runner would otherwise record the TypeError
        # as a per-trial failure instead of a caller error.
        try:
            inspect.signature(run_callable).bind_partial(**params)
        except TypeError as error:
            raise TypeError(f"{self.id}: {error}") from None

        base_seed = self.base_seed(params)
        journal = None
        if journal_dir is not None or resume:
            if cache is None:
                raise ValueError(
                    "journaling/resume needs a result cache to hold the "
                    "completed trials' results (pass cache=...)"
                )
            journal = TrialJournal.for_campaign(
                self.campaign_key(params, trials),
                journal_dir,
                resume=resume,
            )
        runner = TrialRunner(
            workers=workers,
            cache=cache,
            retry=retry,
            timeout=timeout,
            journal=journal,
        )

        if trials == 1:
            # The single-trial path keeps the runner's historical seed
            # semantics (an integer default), so `hotspots figure5b`
            # reproduces the paper artifact exactly as before.
            cache_key = None
            if cache is not None:
                cache_key = stable_key(
                    self.id, self._effective_params(params), base_seed
                )
            trial_seeds: tuple[Any, ...] = (base_seed,)
            batch = [
                Trial(
                    func=run_callable,
                    kwargs=params,
                    seed=None,  # already in params (or the default)
                    cache_key=cache_key,
                    label=f"{self.id}[0]",
                )
            ]
        else:
            seedless = {
                key: value
                for key, value in params.items()
                if key != self.seed_param
            }
            if not isinstance(base_seed, (int, type(None))):
                raise TypeError(
                    f"multi-trial campaigns need an integer base seed; "
                    f"got {type(base_seed).__name__} for {self.id!r}"
                )
            trial_seeds = spawn_trial_sequences(
                base_seed if base_seed is not None else 0, trials
            )
            batch = [
                Trial(
                    func=run_callable,
                    kwargs=seedless,
                    seed=sequence,
                    seed_param=self.seed_param,
                    cache_key=(
                        stable_key(
                            self.id,
                            self._effective_params(seedless, drop_seed=True),
                            sequence,
                        )
                        if cache is not None
                        else None
                    ),
                    label=f"{self.id}[{index}]",
                )
                for index, sequence in enumerate(trial_seeds)
            ]

        with recovery_collection() as recovery_log:
            report = runner.run_report(batch)
        if recovery_log.events:
            # Checkpoint writes, restores, and shard-worker respawns
            # during in-process trials ride back on the report, so
            # the CLI can surface every recovery path it exercised.
            report = dataclasses.replace(
                report, recovery_events=tuple(recovery_log.events)
            )
        timings = active_timings()
        if timings is not None and timings.seconds:
            # `--perf` ran the campaign under a stage-timing
            # collection; the cumulative per-stage seconds ride back
            # on the report (serial trials only — pooled workers time
            # in their own processes and report nothing).
            report = dataclasses.replace(
                report,
                perf_stages=dict(timings.seconds),
                perf_ticks=timings.ticks,
            )
        if raise_on_failure:
            report.raise_on_failure()
        return ExperimentRun(
            experiment=self,
            results=report.results,
            trial_seeds=tuple(trial_seeds),
            report=report,
        )

    def campaign_key(
        self, params: Mapping[str, Any], trials: int
    ) -> str:
        """The stable identity of one campaign (journal file name).

        A campaign is (experiment, fully-bound parameters, trial
        count, base seed) — the same invocation always maps to the
        same key, which is how ``--resume`` finds its checkpoint
        without being told where it lives.
        """
        seedless = {
            key: value
            for key, value in params.items()
            if key != self.seed_param
        }
        return stable_key(
            f"campaign:{self.id}",
            {
                **self._effective_params(seedless, drop_seed=True),
                "__trials__": trials,
            },
            self.base_seed(params),
        )

    def _effective_params(
        self, params: Mapping[str, Any], drop_seed: bool = False
    ) -> dict[str, Any]:
        """Fully-bound parameters — the cache identity of a call.

        Two invocations that differ only in *how* defaults were
        supplied (explicitly vs. by omission) must share a cache key.
        """
        effective = self.signature_defaults()
        effective.update(params)
        if drop_seed:
            effective.pop(self.seed_param, None)
        # Worker count and checkpointing are execution details, never
        # result inputs: a checkpointed (or restored) run is bitwise
        # identical to a clean one, so it must share the cache key.
        effective.pop("workers", None)
        effective.pop("shard_workers", None)
        effective.pop("checkpoint_every", None)
        effective.pop("checkpoint_dir", None)
        effective.pop("restore_from", None)
        return effective


@dataclass(frozen=True)
class ExperimentRun:
    """A finished campaign: one result per trial, plus provenance.

    ``report`` (when the campaign ran through the fault-tolerant
    runner) accounts for every trial: cached/resumed skips, retries,
    timeouts, failures, and batch-level fallback events.  Failed
    trials leave ``None`` in their ``results`` slot.
    """

    experiment: Experiment
    results: tuple[Any, ...]
    trial_seeds: tuple[Any, ...]
    report: Optional[RunReport] = None

    @property
    def result(self) -> Any:
        """The single result of a one-trial campaign."""
        if len(self.results) != 1:
            raise ValueError(
                f"campaign has {len(self.results)} trials; "
                "pick one from .results"
            )
        return self.results[0]

    def formatted(self) -> str:
        """Every trial rendered with the experiment's formatter."""
        _, format_result = self.experiment.resolve()

        def render(index: int, trial_result: Any) -> str:
            if trial_result is None and self.report is not None:
                outcome = self.report.outcomes[index]
                if not outcome.succeeded:
                    return f"<trial {outcome.status}: {outcome.describe()}>"
            return str(format_result(trial_result))

        if len(self.results) == 1:
            return render(0, self.results[0])
        sections = []
        for index, trial_result in enumerate(self.results):
            sections.append(
                f"=== {self.experiment.id} trial {index + 1}/"
                f"{len(self.results)} ==="
            )
            sections.append(render(index, trial_result))
        return "\n".join(sections)


#: The registry proper: one declarative record per artifact.
REGISTRY: dict[str, Experiment] = {
    experiment.id: experiment
    for experiment in (
        Experiment(
            id="table1",
            title="Table 1 — botnet propagation commands on a live /15",
            module="repro.experiments.table1",
        ),
        Experiment(
            id="figure1",
            title="Figure 1 — Blaster sources by /24 and boot-seed forensics",
            module="repro.experiments.figure1",
        ),
        Experiment(
            id="figure2",
            title="Figure 2 — Slammer unique sources by destination /24",
            module="repro.experiments.figure2",
        ),
        Experiment(
            id="figure3",
            title="Figure 3 — per-host Slammer scans and LCG cycle spectrum",
            module="repro.experiments.figure3",
        ),
        Experiment(
            id="figure4",
            title="Figure 4 — CodeRedII sources, NATs, and quarantine replay",
            module="repro.experiments.figure4",
        ),
        Experiment(
            id="table2",
            title="Table 2 — enterprise egress filtering hides infections",
            module="repro.experiments.table2",
        ),
        Experiment(
            id="figure5a",
            title="Figure 5(a) — hit-list worm infection rate",
            module="repro.experiments.figure5",
            runner="run_infection",
            formatter="format_infection",
        ),
        Experiment(
            id="figure5b",
            title="Figure 5(b) — distributed detection starved by hotspots",
            module="repro.experiments.figure5",
            runner="run_detection",
            formatter="format_detection",
        ),
        Experiment(
            id="figure5c",
            title="Figure 5(c) — NATed worm vs sensor placement",
            module="repro.experiments.figure5",
            runner="run_nat_detection",
            formatter="format_nat_detection",
        ),
        # Beyond the paper: quantify its concluding arguments.
        Experiment(
            id="local-detection",
            title="Extension — local darknets beat a starved global quorum",
            module="repro.experiments.extension_local_detection",
        ),
        Experiment(
            id="containment",
            title="Extension — hotspots defeat quorum-triggered quarantine",
            module="repro.experiments.extension_containment",
        ),
    )
}


def get(experiment_id: str) -> Experiment:
    """The :class:`Experiment` record for an id."""
    try:
        return REGISTRY[experiment_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; "
            f"known: {sorted(REGISTRY)}"
        ) from None


def experiment_ids() -> list[str]:
    """Registered ids, sorted."""
    return sorted(REGISTRY)
