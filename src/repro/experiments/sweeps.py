"""Sensitivity sweeps over the paper's estimated parameters.

Two of the paper's simulation inputs are explicit estimates:

* the NAT'd fraction of the vulnerable population — "we can estimate
  the number of hosts with 192.168/16 private addresses at 15%.  This
  is a crude estimate, as it may significantly underestimate the real
  percentage";
* the hit-list size axis of Figure 5(a/b), sampled at only four
  points.

These sweeps quantify how sensitive the headline results are to those
estimates: the 192/8-placement advantage grows monotonically with the
NAT fraction (so underestimation makes the paper's conclusion
*stronger*), and the detection-share law ``alerts ≈ hit-list share``
holds along the whole hit-list axis, not just at the sampled sizes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence


from repro.experiments import figure5
from repro.population.synthesis import PopulationSpec
from repro.runtime import Trial, TrialRunner


@dataclass(frozen=True)
class NatFractionSweep:
    """Figure 5(c) outcomes across NAT'd fractions."""

    fractions: tuple[float, ...]
    targeted_final_alerts: tuple[float, ...]
    random_final_alerts: tuple[float, ...]
    targeted_alert_at_20pct: tuple[float, ...]

    @property
    def targeted_always_wins(self) -> bool:
        """192/8 placement's final alert fraction beats random's at
        every swept fraction — the conclusion is robust to the
        paper's crude 15% estimate."""
        return all(
            targeted > random_
            for targeted, random_ in zip(
                self.targeted_final_alerts, self.random_final_alerts
            )
        )


def sweep_nat_fraction(
    fractions: Sequence[float] = (0.05, 0.15, 0.30),
    population_spec: Optional[PopulationSpec] = None,
    num_random_sensors: int = 3_000,
    max_time: float = 900.0,
    seed: int = 2010,
    workers: int = 1,
) -> NatFractionSweep:
    """Re-run Figure 5(c) at several NAT'd fractions.

    Every fraction reuses the same explicit seed (the sweep isolates
    the NAT-fraction axis), so the per-fraction runs are independent
    and fan out over ``workers`` with results identical to the serial
    loop.  Full horizon for every fraction: comparing final alert
    fractions needs identical observation windows.
    """
    trials = [
        Trial(
            func=figure5.run_nat_detection,
            kwargs=dict(
                population_spec=population_spec,
                nat_fraction=fraction,
                num_random_sensors=num_random_sensors,
                max_time=max_time,
                stop_at_fraction=1.0,
                seed=seed,
                stratify_nat_seeds=True,
            ),
            label=f"nat_fraction[{fraction}]",
        )
        for fraction in fractions
    ]
    targeted_final = []
    random_final = []
    targeted_at_20 = []
    for result in TrialRunner(workers=workers).run(trials):
        targeted = result.placement("192/8 per-/16")
        random_ = result.placement("random")
        targeted_final.append(targeted.timeline.final_fraction())
        random_final.append(random_.timeline.final_fraction())
        targeted_at_20.append(targeted.alerted_at_20pct_infected)
    return NatFractionSweep(
        fractions=tuple(fractions),
        targeted_final_alerts=tuple(targeted_final),
        random_final_alerts=tuple(random_final),
        targeted_alert_at_20pct=tuple(targeted_at_20),
    )


def format_nat_sweep(result: NatFractionSweep) -> str:
    """The sweep as a small table."""
    lines = ["NAT fraction sweep (final alert fraction per placement):"]
    lines.append("  nat%   192/8-placement   random-placement   192/8 at-20%")
    for fraction, targeted, random_, at20 in zip(
        result.fractions,
        result.targeted_final_alerts,
        result.random_final_alerts,
        result.targeted_alert_at_20pct,
    ):
        lines.append(
            f"  {fraction:>4.0%}  {targeted:>15.1%}  {random_:>16.1%}  {at20:>12.1%}"
        )
    lines.append(f"  always wins? {result.targeted_always_wins}")
    return "\n".join(lines)


@dataclass(frozen=True)
class HitlistShareSweep:
    """Figure 5(b)'s share law along a fine hit-list axis."""

    num_prefixes: tuple[int, ...]
    shares: tuple[float, ...]
    final_alert_fractions: tuple[float, ...]

    @property
    def share_law_holds(self) -> bool:
        """Final alert fraction tracks the hit-list share everywhere."""
        return all(
            alert <= share * 1.3 + 0.02
            for share, alert in zip(self.shares, self.final_alert_fractions)
        )


def sweep_hitlist_share(
    sizes: Sequence[int] = (5, 20, 50, 150, 400, 800),
    population_spec: Optional[PopulationSpec] = None,
    max_time: float = 900.0,
    seed: int = 2011,
    workers: int = 1,
) -> HitlistShareSweep:
    """Measure the alert-share law along a fine hit-list-size axis."""
    result = figure5.run_infection(
        population_spec=population_spec,
        hitlist_sizes=tuple(sizes),
        max_time=max_time,
        seed=seed,
        workers=workers,
    )
    shares = tuple(
        min(run.num_prefixes / result.total_slash16s, 1.0)
        for run in result.runs
    )
    alerts = tuple(
        run.alert_timeline.final_fraction() for run in result.runs
    )
    return HitlistShareSweep(
        num_prefixes=tuple(sizes),
        shares=shares,
        final_alert_fractions=alerts,
    )


def format_share_sweep(result: HitlistShareSweep) -> str:
    """The sweep as a small table."""
    lines = ["Hit-list share law (final alert fraction vs share):"]
    for size, share, alert in zip(
        result.num_prefixes, result.shares, result.final_alert_fractions
    ):
        lines.append(f"  {size:>5} prefixes: share={share:6.1%}  alerts={alert:6.1%}")
    lines.append(f"  share law holds? {result.share_law_holds}")
    return "\n".join(lines)
