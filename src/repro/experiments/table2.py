"""Table 2 — Fortune-100 enterprises vs broadband ISPs.

"Despite the size of the companies and the huge number of addresses
they manage, there were almost no external indication of infections"
— while the top broadband providers leak tens of thousands.  The
mechanism is enterprise egress filtering.

We synthesize three enterprises and three broadband ISPs, seed
realistic internal infection densities in both, apply egress-drop
rules at every enterprise border, and count the infected IPs each
organization's hosts expose to the IMS sensor deployment for
CodeRedII, Slammer, and Blaster.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.filtering_study import (
    FilteringStudyResult,
    blaster_leak_counts,
    run_filtering_study,
)
from repro.env.filtering import FilteringPolicy, FilterRule
from repro.population.allocation import (
    place_infected_hosts,
    synthesize_broadband_isps,
    synthesize_enterprises,
)
from repro.sensors.darknet import ims_standard_deployment
from repro.worms.codered2 import CodeRedIIWorm
from repro.worms.slammer import SlammerWorm

#: Internal infection density (infected hosts per allocated address).
#: Enterprises patch but cannot reach zero ("stamping out all
#: infections is nearly impossible"); broadband hosts are less
#: managed.
ENTERPRISE_INFECTION_DENSITY = 0.0008
BROADBAND_INFECTION_DENSITY = 0.0012


@dataclass(frozen=True)
class Table2Result:
    """The reproduced table plus the no-filtering counterfactual."""

    filtered: FilteringStudyResult
    unfiltered: FilteringStudyResult

    @property
    def enterprises_hidden(self) -> bool:
        """With egress filtering, enterprises show ~no infections."""
        for row in self.filtered.enterprises():
            if any(count > 5 for count in row.observed.values()):
                return False
        return True

    @property
    def broadband_leaks(self) -> bool:
        """Broadband providers leak large infected populations."""
        return all(
            sum(row.observed.values()) > 1_000
            for row in self.filtered.broadband()
        )

    @property
    def filtering_is_the_cause(self) -> bool:
        """Without egress rules, enterprises would be visible too."""
        return any(
            sum(row.observed.values()) > 50
            for row in self.unfiltered.enterprises()
        )


def run(
    num_enterprises: int = 3,
    num_isps: int = 3,
    probes_per_host: int = 3_000,
    blaster_reach: int = 10_000_000,
    seed: int = 2004,
) -> Table2Result:
    """Run the study with and without enterprise egress filtering."""
    rng = np.random.default_rng(seed)
    enterprises = synthesize_enterprises(num_enterprises, rng)
    isps = synthesize_broadband_isps(num_isps, rng)
    organizations = enterprises + isps

    infected_counts = [
        int(
            org.address_count
            * (
                ENTERPRISE_INFECTION_DENSITY
                if org.kind == "enterprise"
                else BROADBAND_INFECTION_DENSITY
            )
        )
        for org in organizations
    ]
    sensors = ims_standard_deployment()
    worms = {"codered2": CodeRedIIWorm(), "slammer": SlammerWorm()}

    def study(policy: FilteringPolicy) -> FilteringStudyResult:
        placements = {
            worm_name: place_infected_hosts(organizations, infected_counts, rng)
            for worm_name in worms
        }
        result = run_filtering_study(
            organizations,
            placements,
            worms,
            sensors,
            policy,
            probes_per_host,
            rng,
        )
        blaster_placement = place_infected_hosts(
            organizations, infected_counts, rng
        )
        blaster_counts = blaster_leak_counts(
            blaster_placement, sensors, policy, blaster_reach, rng
        )
        rows = tuple(
            type(row)(
                name=row.name,
                kind=row.kind,
                total_addresses=row.total_addresses,
                observed={**row.observed, "blaster": blaster_counts[row.name]},
            )
            for row in result.rows
        )
        return FilteringStudyResult(rows=rows)

    egress_policy = FilteringPolicy(
        FilterRule("egress", block)
        for org in enterprises
        for block in org.blocks.blocks
    )
    filtered = study(egress_policy)
    unfiltered = study(FilteringPolicy())
    return Table2Result(filtered=filtered, unfiltered=unfiltered)


def format_result(result: Table2Result) -> str:
    """Render the table the way the paper prints it."""
    lines = ["Org             Total IPs   CRII IPs  Slammer IPs  Blaster IPs"]
    for row in result.filtered.rows:
        lines.append(
            f"{row.name:<15} {row.total_addresses:>9,}  "
            f"{row.observed.get('codered2', 0):>8}  "
            f"{row.observed.get('slammer', 0):>11}  "
            f"{row.observed.get('blaster', 0):>11}"
        )
    lines.append(
        f"-- enterprises hidden? {result.enterprises_hidden}; "
        f"broadband leaks? {result.broadband_leaks}; "
        f"filtering is the cause? {result.filtering_is_the_cause}"
    )
    return "\n".join(lines)
