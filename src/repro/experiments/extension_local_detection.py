"""Extension — local detection vs global quorum detection.

The paper's conclusion: "while global distributed detection systems
have an important function, it is critical to invest in local
detection systems to protect networks from the targeted impact of
hotspots."  The paper argues this qualitatively; this extension
quantifies it.

Setup: a hit-list worm (the bot behaviour of Table 1 / Figure 5)
targets a handful of /16 networks, one of which belongs to a defended
organization.  Two detectors race the infection:

* **global quorum** — thousands of /24 sensors placed randomly across
  the Internet, declaring an outbreak when a quorum fraction alerts;
* **local detector** — the organization's *own* dark /24s (unused
  space inside its /16), alerting at the same payload threshold.

Because the worm's hotspot covers only the hit-list, the global
quorum starves, while the organization's own dark space sits inside
the hotspot and fires early.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.net.cidr import BlockSet, CIDRBlock
from repro.population.model import HostPopulation
from repro.sensors.deployment import SensorGrid, place_random
from repro.sensors.detection import quorum_detection_time
from repro.sim.engine import EpidemicSimulator, SimulationConfig
from repro.worms.hitlist import HitListCodeRedIIWorm


@dataclass(frozen=True)
class LocalDetectionResult:
    """Outcome of the local-vs-global race."""

    org_block: CIDRBlock
    local_detection_time: Optional[float]
    global_quorum_time: Optional[float]
    org_half_infected_time: Optional[float]
    final_infected_fraction: float
    global_alert_fraction: float

    @property
    def local_wins(self) -> bool:
        """The local detector fires while the global quorum stays silent
        or fires later."""
        if self.local_detection_time is None:
            return False
        if self.global_quorum_time is None:
            return True
        return self.local_detection_time <= self.global_quorum_time

    @property
    def local_fires_before_org_saturates(self) -> bool:
        """Detection early enough for the organization to react."""
        if self.local_detection_time is None:
            return False
        if self.org_half_infected_time is None:
            return True
        return self.local_detection_time <= self.org_half_infected_time


def run(
    num_target_slash16s: int = 8,
    hosts_per_slash16: int = 800,
    org_dark_slash24s: int = 32,
    num_global_sensors: int = 4_000,
    quorum_fraction: float = 0.05,
    alert_threshold: int = 5,
    scan_rate: float = 10.0,
    max_time: float = 900.0,
    seed: int = 2007,
) -> LocalDetectionResult:
    """Race a local darknet against a global quorum detector."""
    rng = np.random.default_rng(seed)

    # Build the targeted /16s; the first one is the defended org.
    first_octets = rng.choice(np.arange(60, 200), size=num_target_slash16s, replace=False)
    blocks = [
        CIDRBlock((int(octet) << 24) | (int(rng.integers(0, 256)) << 16), 16)
        for octet in first_octets
    ]
    org_block = blocks[0]
    hitlist = BlockSet(blocks)

    # Vulnerable hosts cluster in the targeted /16s, avoiding the
    # org's dark /24s (dark space is unused by definition).
    dark_prefixes = rng.choice(
        org_block.slash24_prefixes(), size=org_dark_slash24s, replace=False
    )
    dark_set = BlockSet(
        CIDRBlock(int(prefix) << 8, 24) for prefix in dark_prefixes
    )
    host_arrays = []
    for block in blocks:
        addrs = block.random_addresses(hosts_per_slash16 * 2, rng)
        addrs = addrs[~dark_set.contains_array(addrs)]
        host_arrays.append(np.unique(addrs)[:hosts_per_slash16])
    hosts = np.unique(np.concatenate(host_arrays))
    population = HostPopulation(hosts)

    local_grid = SensorGrid(dark_prefixes, alert_threshold=alert_threshold)
    global_grid = SensorGrid(
        place_random(num_global_sensors, rng), alert_threshold=alert_threshold
    )

    worm = HitListCodeRedIIWorm(hitlist)
    simulator = EpidemicSimulator(
        worm, population, sensor_grids=[local_grid, global_grid]
    )
    config = SimulationConfig(
        scan_rate=scan_rate,
        max_time=max_time,
        seed_count=10,
        stop_at_fraction=0.95,
    )
    result = simulator.run(config, rng)

    # Organization-level milestone, approximated from the global
    # infection curve: the time the outbreak has infected as many
    # hosts as half the organization holds.  (The engine does not
    # record per-infection addresses; since the hit-list spreads
    # near-symmetrically across its /16s, this is a tight proxy.)
    org_hosts = hosts[org_block.contains_array(hosts)]
    org_half_time = result.time_to_fraction(0.5 * len(org_hosts) / len(hosts))

    local_time = quorum_detection_time(local_grid.alert_times(), 1e-9)
    global_time = quorum_detection_time(
        global_grid.alert_times(), quorum_fraction
    )
    return LocalDetectionResult(
        org_block=org_block,
        local_detection_time=local_time,
        global_quorum_time=global_time,
        org_half_infected_time=org_half_time,
        final_infected_fraction=result.final_fraction_infected,
        global_alert_fraction=global_grid.fraction_alerted(),
    )


def format_result(result: LocalDetectionResult) -> str:
    """Summary of the race."""
    lines = [
        f"Local detection (own dark space in {result.org_block}) vs "
        "global quorum:",
        f"  local detector fired at: {result.local_detection_time}s",
        f"  global quorum fired at: {result.global_quorum_time}",
        f"  global sensors ever alerting: {result.global_alert_fraction:.2%}",
        f"  outbreak final infected fraction: "
        f"{result.final_infected_fraction:.1%}",
        f"  local wins? {result.local_wins}",
    ]
    return "\n".join(lines)
