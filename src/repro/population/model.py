"""Host population state.

The paper's epidemic model has three host populations — vulnerable,
infected, and immune — with hosts moving vulnerable → infected on a
successful infection attempt.  :class:`HostPopulation` keeps the
vulnerable address set sorted so the simulator can match millions of
probe targets against it with one ``searchsorted`` per tick.
"""

from __future__ import annotations

import enum
from typing import Optional

import numpy as np

from repro.net.kernels import IntervalLocator, kernels_enabled


class HostStatus(enum.IntEnum):
    """Lifecycle state of a host in the population."""

    VULNERABLE = 0
    INFECTED = 1
    IMMUNE = 2


class HostPopulation:
    """The vulnerable/infected/immune host sets.

    Parameters
    ----------
    vulnerable_addrs:
        Unique addresses of all hosts running the vulnerable service.
    presorted_unique:
        Trusted fast path for callers that already hold a
        sorted-unique uint32 array (the sharded engine slices the
        global sorted address table): the array is aliased as-is — no
        copy, no re-sort, no duplicate check.  The caller must never
        mutate it afterwards.
    """

    def __init__(
        self,
        vulnerable_addrs: np.ndarray,
        *,
        presorted_unique: bool = False,
    ):
        if presorted_unique:
            addrs = np.asarray(vulnerable_addrs, dtype=np.uint32)
        else:
            addrs = np.unique(
                np.asarray(vulnerable_addrs, dtype=np.uint32)
            )
            if len(addrs) != len(vulnerable_addrs):
                raise ValueError("vulnerable addresses must be unique")
        self._addrs = addrs
        self._status = np.full(len(addrs), HostStatus.VULNERABLE, dtype=np.int8)
        # Status transitions only ever go VULNERABLE -> INFECTED and
        # VULNERABLE -> IMMUNE, so the population counts are maintained
        # incrementally instead of re-scanning the status array (the
        # simulator reads `num_infected` every tick).
        self._num_infected = 0
        self._num_immune = 0
        # Lazily built exact-match index for `vulnerable_hits`; valid
        # forever because `_addrs` never changes after construction.
        self._locator: Optional[IntervalLocator] = None

    @property
    def size(self) -> int:
        """Total number of hosts (any status)."""
        return len(self._addrs)

    @property
    def num_infected(self) -> int:
        """Hosts currently infected."""
        return self._num_infected

    @property
    def num_vulnerable(self) -> int:
        """Hosts still vulnerable (not infected, not immune)."""
        return self.size - self._num_infected - self._num_immune

    @property
    def num_immune(self) -> int:
        """Hosts patched or otherwise immune."""
        return self._num_immune

    @property
    def fraction_infected(self) -> float:
        """Infected / total."""
        return self.num_infected / self.size if self.size else 0.0

    def addresses(self) -> np.ndarray:
        """All host addresses (sorted)."""
        return self._addrs

    def infected_addresses(self) -> np.ndarray:
        """Addresses of currently infected hosts."""
        return self._addrs[self._status == HostStatus.INFECTED]

    def vulnerable_addresses(self) -> np.ndarray:
        """Addresses of currently vulnerable hosts."""
        return self._addrs[self._status == HostStatus.VULNERABLE]

    def _indices_of(self, addrs: np.ndarray) -> np.ndarray:
        """Indices of known addresses; raises on unknown addresses."""
        addrs = np.asarray(addrs, dtype=np.uint32)
        if not len(self._addrs):
            # np.clip with an upper bound of -1 would wrap the indices;
            # an empty population simply knows no addresses.
            if not len(addrs):
                return np.empty(0, dtype=np.intp)
            raise KeyError("address not in population")
        idx = np.searchsorted(self._addrs, addrs)
        idx = np.clip(idx, 0, len(self._addrs) - 1)
        if not (self._addrs[idx] == addrs).all():
            raise KeyError("address not in population")
        return idx

    def status_of(self, addrs: np.ndarray) -> np.ndarray:
        """Status per address (addresses must belong to the population)."""
        return self._status[self._indices_of(addrs)]

    def infect(self, addrs: np.ndarray) -> np.ndarray:
        """Mark hosts infected; returns the newly infected addresses.

        Already-infected and immune hosts are unaffected, so feeding
        duplicate infection attempts is safe and cheap.
        """
        if len(np.asarray(addrs)) == 0:
            return np.empty(0, dtype=np.uint32)
        idx = self._indices_of(addrs)
        fresh = self._status[idx] == HostStatus.VULNERABLE
        fresh_idx = np.unique(idx[fresh])
        self._status[fresh_idx] = HostStatus.INFECTED
        self._num_infected += len(fresh_idx)
        return self._addrs[fresh_idx]

    def immunize(self, addrs: np.ndarray) -> None:
        """Mark hosts immune (patched); infected hosts stay infected."""
        if len(np.asarray(addrs)) == 0:
            return
        idx = self._indices_of(addrs)
        vulnerable = self._status[idx] == HostStatus.VULNERABLE
        flipped = np.unique(idx[vulnerable])
        self._status[flipped] = HostStatus.IMMUNE
        self._num_immune += len(flipped)

    def vulnerable_hits(self, targets: np.ndarray) -> np.ndarray:
        """Addresses of *vulnerable* hosts hit by a batch of probes.

        ``targets`` may contain anything; only probes that land
        exactly on a currently vulnerable host are returned (with
        duplicates collapsed).
        """
        targets = np.asarray(targets, dtype=np.uint32).ravel()
        if not len(targets) or not len(self._addrs):
            return np.empty(0, dtype=np.uint32)
        if kernels_enabled() and len(targets) >= len(self._addrs):
            # Figure-scale batches dwarf the host table, so flip the
            # lookup: sort the batch once, then binary-search each
            # *host* in it — O(T log T + H log T) with a tiny search
            # side, several times faster than locating every probe.
            # `_addrs` is sorted, so the surviving addresses come out
            # ascending — exactly the sorted-unique order of the
            # per-probe path below.
            sorted_targets = np.sort(targets)
            idx = np.searchsorted(sorted_targets, self._addrs)
            # idx == len means the address exceeds every target; slot 0
            # is a safe stand-in because the equality check rejects it
            # (searchsorted would have found an equal first element).
            idx[idx == len(sorted_targets)] = 0
            hit = sorted_targets[idx] == self._addrs
            hit &= self._status == HostStatus.VULNERABLE
            return self._addrs[np.flatnonzero(hit)]
        if kernels_enabled():
            # Bucketed locate instead of per-element binary search.
            # `locate` = searchsorted(side="right") - 1, so a slot
            # points at the greatest address <= target and matches
            # exactly when that address equals the target; slot == -1
            # wraps to the last address, which cannot equal a target
            # smaller than the first, so no extra masking is needed.
            if self._locator is None:
                self._locator = IntervalLocator(
                    self._addrs.astype(np.uint64)
                )
            idx = self._locator.locate(targets)
        else:
            idx = np.searchsorted(self._addrs, targets)
            idx = np.clip(idx, 0, len(self._addrs) - 1)
        hit = self._addrs[idx] == targets
        hit &= self._status[idx] == HostStatus.VULNERABLE
        # Index-based gather, then dedup: a vulnerable host hit twice
        # in one batch must yield exactly ONE address here — the
        # engine turns this array into one `infect` call, one
        # `worm.add_hosts` row, and one `infection_times` entry, and
        # those state arrays stay aligned only if this invariant
        # holds (np.unique also returns the sorted order the engine's
        # bitwise-equivalence contract depends on).
        return np.unique(targets.take(np.flatnonzero(hit)))

    def reset(self) -> None:
        """Return every host to the vulnerable state."""
        self._status[:] = HostStatus.VULNERABLE
        self._num_infected = 0
        self._num_immune = 0

    # -- checkpoint support -------------------------------------------

    def state_snapshot(self) -> dict:
        """Copy of the mutable state (the address table is immutable).

        Part of the :mod:`repro.runtime.checkpoint` contract: a
        restore from this snapshot continues bitwise-identically.
        """
        return {
            "status": self._status.copy(),
            "num_infected": int(self._num_infected),
            "num_immune": int(self._num_immune),
        }

    def state_restore(self, snapshot: dict) -> None:
        """Overwrite the mutable state from a snapshot (full replace)."""
        status = np.asarray(snapshot["status"], dtype=np.int8)
        if len(status) != len(self._addrs):
            raise ValueError(
                f"HostPopulation.state_restore: snapshot covers "
                f"{len(status)} hosts, this population has "
                f"{len(self._addrs)}"
            )
        self._status[:] = status
        self._num_infected = int(snapshot["num_infected"])
        self._num_immune = int(snapshot["num_immune"])
