"""Host populations and synthetic address allocations.

The paper's simulations run over the *measured* CodeRedII-infected
population (134,586 addresses clustered in 47 /8 networks) and over
ARIN allocations of Fortune-100 enterprises and broadband ISPs.  Both
data sets are proprietary, so this package synthesizes populations
with the same documented structure (see DESIGN.md for the
calibration anchors).
"""

from repro.population.allocation import (
    OrganizationAllocation,
    place_infected_hosts,
    synthesize_broadband_isps,
    synthesize_enterprises,
)
from repro.population.model import HostPopulation, HostStatus
from repro.population.synthesis import (
    CODERED2_ANCHORS,
    PopulationSpec,
    nat_population,
    synthesize_clustered_population,
)

__all__ = [
    "CODERED2_ANCHORS",
    "HostPopulation",
    "HostStatus",
    "OrganizationAllocation",
    "PopulationSpec",
    "nat_population",
    "place_infected_hosts",
    "synthesize_broadband_isps",
    "synthesize_clustered_population",
    "synthesize_enterprises",
]
