"""Synthetic vulnerable-population generation.

The paper's CodeRedII vulnerable population is "134,586 unique
addresses ... clustered in 47 /8 networks", spread over 4,481
populated /16s whose density profile is pinned down by the hit-list
coverage numbers in Section 5.2:

    top 10 /16s  → 10.60 % of hosts
    top 100      → 50.49 %
    top 1000     → 91.33 %
    all 4481     → 100 %

We reproduce that profile directly: cumulative coverage anchors are
interpolated in log-rank space to a per-/16 weight curve, host counts
are drawn multinomially from the weights, and the /16s are scattered
over 47 public /8s.  Greedy hit-lists built on the synthetic
population then cover, by construction, approximately the paper's
fractions — the property Figure 5(a/b) depends on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np
from scipy.optimize import brentq

from repro.env.nat import NATDeployment
from repro.net.special import PRIVATE_192

#: (rank, cumulative host fraction) anchors from the paper's hit-list
#: coverage study of the CodeRedII population.
CODERED2_ANCHORS: tuple[tuple[int, float], ...] = (
    (0, 0.0),
    (10, 0.1060),
    (100, 0.5049),
    (1000, 0.9133),
    (4481, 1.0),
)

#: First octets never used for synthetic public populations: current
#: private/special space plus 192/8 (kept clean so the CodeRedII NAT
#: hotspot in 192/8 is unambiguously attributable to leaked probes).
_EXCLUDED_FIRST_OCTETS = frozenset({0, 10, 127, 172, 192} | set(range(224, 256)))


@dataclass(frozen=True)
class PopulationSpec:
    """Parameters of a synthetic clustered population."""

    total_hosts: int = 134_586
    num_slash8: int = 47
    num_slash16: int = 4_481
    anchors: Sequence[tuple[int, float]] = CODERED2_ANCHORS
    #: /8-level concentration: ``major_slash8s`` of the /8s jointly
    #: hold ``major_share`` of the population's /16s.  The defaults
    #: match the paper's "the top 20 /8 networks include 94% of the
    #: vulnerable population".
    major_slash8s: int = 20
    major_share: float = 0.94

    def __post_init__(self) -> None:
        if self.total_hosts <= 0:
            raise ValueError("total_hosts must be positive")
        if self.num_slash16 < self.num_slash8:
            raise ValueError("need at least one /16 per /8")
        if self.num_slash8 > 256 - len(_EXCLUDED_FIRST_OCTETS):
            raise ValueError("not enough public /8s available")
        ranks = [rank for rank, _ in self.anchors]
        fractions = [fraction for _, fraction in self.anchors]
        if ranks != sorted(ranks) or fractions != sorted(fractions):
            raise ValueError("anchors must be sorted in rank and fraction")
        if self.anchors[0] != (0, 0.0) or self.anchors[-1][1] != 1.0:  # bitwise
            raise ValueError("anchors must start at (0, 0) and end at fraction 1")
        if self.anchors[-1][0] != self.num_slash16:
            raise ValueError("last anchor rank must equal num_slash16")


def as_population_spec(
    value: "PopulationSpec | Mapping[str, object] | None",
) -> PopulationSpec:
    """Coerce ``value`` to a :class:`PopulationSpec`.

    Accepts an existing spec, ``None`` (paper defaults), or a plain
    mapping of field overrides — the form a CLI ``--set`` override
    arrives in, e.g. ``--set "population_spec={'total_hosts': 20000}"``.
    """
    if value is None:
        return PopulationSpec()
    if isinstance(value, PopulationSpec):
        return value
    if isinstance(value, Mapping):
        overrides = dict(value)
        anchors = overrides.get("anchors")
        if anchors is not None:
            overrides["anchors"] = tuple(
                (int(rank), float(fraction)) for rank, fraction in anchors
            )
        return PopulationSpec(**overrides)
    raise TypeError(
        "population_spec must be a PopulationSpec, a mapping of its "
        f"fields, or None; got {type(value).__name__}"
    )


#: Power-law exponent of the first anchor segment (mild head decay;
#: later segments are solved for, this one is a free choice).
_HEAD_EXPONENT = 0.5


def _weight_curve(spec: PopulationSpec) -> np.ndarray:
    """Monotone per-rank /16 weights whose band sums hit the anchors.

    Each anchor band ``(rank_i, rank_{i+1}]`` gets power-law weights
    ``w(r) = w_boundary * (r / r_boundary)^(-s)``, continuous at band
    boundaries, with ``s`` solved so the band total equals the
    anchor's host fraction.  Monotone weights mean a greedy top-k
    hit-list covers exactly the anchor fractions in expectation.
    """
    anchors = list(spec.anchors)
    weights = np.empty(spec.num_slash16, dtype=float)

    # Head band: fixed exponent, scale from the band total.
    head_end, head_fraction = anchors[1]
    head_ranks = np.arange(1, head_end + 1, dtype=float)
    head_shape = head_ranks**-_HEAD_EXPONENT
    weights[:head_end] = head_shape * (head_fraction / head_shape.sum())

    boundary_rank = float(head_end)
    boundary_weight = weights[head_end - 1]
    for (band_start, start_fraction), (band_end, end_fraction) in zip(
        anchors[1:], anchors[2:]
    ):
        band_total = end_fraction - start_fraction
        ranks = np.arange(band_start + 1, band_end + 1, dtype=float)

        def band_sum(s: float) -> float:
            return float(boundary_weight * ((ranks / boundary_rank) ** -s).sum())

        if band_sum(0.0) < band_total:
            raise ValueError(
                "anchors are not realizable with monotone weights: band "
                f"({band_start}, {band_end}] needs {band_total:.4f} but flat "
                f"continuation provides only {band_sum(0.0):.4f}"
            )
        exponent = brentq(lambda s: band_sum(s) - band_total, 0.0, 50.0)
        weights[band_start:band_end] = boundary_weight * (
            (ranks / boundary_rank) ** -exponent
        )
        boundary_rank = float(band_end)
        boundary_weight = weights[band_end - 1]

    return weights / weights.sum()


def synthesize_clustered_population(
    spec: PopulationSpec,
    rng: np.random.Generator,
) -> np.ndarray:
    """Synthesize unique vulnerable addresses with paper-like clustering.

    Returns a sorted ``uint32`` array of ``spec.total_hosts`` unique
    addresses spread over ``spec.num_slash16`` /16 blocks inside
    ``spec.num_slash8`` public /8 networks.
    """
    available_octets = np.array(
        sorted(set(range(256)) - _EXCLUDED_FIRST_OCTETS), dtype=np.int64
    )
    slash8_octets = rng.choice(available_octets, size=spec.num_slash8, replace=False)

    # Scatter the /16s over the chosen /8s (each /8 gets at least
    # one); a small set of "major" /8s jointly holds most of them, as
    # in the measured population.  A /8 holds at most 256 /16s, so
    # any overfull draw is redistributed.
    majors = min(spec.major_slash8s, spec.num_slash8)
    weights = np.full(spec.num_slash8, (1.0 - spec.major_share) / max(
        spec.num_slash8 - majors, 1
    ))
    weights[:majors] = spec.major_share / majors
    weights /= weights.sum()
    extra = spec.num_slash16 - spec.num_slash8
    extra_counts = rng.multinomial(extra, weights)
    while (extra_counts + 1 > 256).any():
        overfull = extra_counts + 1 > 256
        surplus = int((extra_counts[overfull] - 255).sum())
        extra_counts[overfull] = 255
        room = ~overfull
        redistribution = rng.multinomial(
            surplus, weights[room] / weights[room].sum()
        )
        extra_counts[room] += redistribution
    assignment = np.concatenate(
        [
            np.arange(spec.num_slash8),
            np.repeat(np.arange(spec.num_slash8), extra_counts),
        ]
    )
    rng.shuffle(assignment)

    # Pick a distinct second octet for every /16 within its /8.
    slash16_prefixes = np.empty(spec.num_slash16, dtype=np.uint32)
    for slash8_index in range(spec.num_slash8):
        members = np.where(assignment == slash8_index)[0]
        if len(members) > 256:
            raise ValueError(
                f"/8 #{slash8_index} assigned {len(members)} /16s (max 256); "
                "use more /8s or fewer /16s"
            )
        second_octets = rng.choice(256, size=len(members), replace=False)
        prefix_base = np.uint32(slash8_octets[slash8_index]) << np.uint32(8)
        slash16_prefixes[members] = prefix_base | second_octets.astype(np.uint32)

    # Host counts per /16 from the calibrated weight curve; the curve
    # is defined over ranks, so shuffle which /16 gets which rank.
    weights = _weight_curve(spec)
    rank_of_slash16 = rng.permutation(spec.num_slash16)
    counts = rng.multinomial(spec.total_hosts, weights)[rank_of_slash16]

    # Guarantee every /16 is populated (the paper counts 4481
    # populated /16s): move one host from the richest block into any
    # empty one.
    for empty_index in np.where(counts == 0)[0]:
        richest = int(np.argmax(counts))
        counts[richest] -= 1
        counts[empty_index] += 1

    pieces = []
    for prefix, count in zip(slash16_prefixes, counts):
        if count > 65_536:
            raise ValueError("a /16 cannot hold more than 65,536 hosts")
        low_bits = rng.choice(65_536, size=int(count), replace=False)
        pieces.append(
            (np.uint32(prefix) << np.uint32(16)) | low_bits.astype(np.uint32)
        )
    addrs = np.concatenate(pieces).astype(np.uint32)
    addrs.sort()
    return addrs


def nat_population(
    addrs: np.ndarray,
    nat_fraction: float,
    rng: np.random.Generator,
    intra_private_model: str = "statistical",
) -> tuple[np.ndarray, NATDeployment]:
    """Move a fraction of hosts behind NATs at 192.168/16 addresses.

    Mirrors the Figure 5(c) setup: "we configured 15% of vulnerable
    hosts as if they were NATed with 192.168/16 addresses".  Selected
    hosts get unique 192.168.x.y slots; the rest keep their public
    addresses.  Returns the rewritten address array (sorted) and the
    matching :class:`~repro.env.nat.NATDeployment`.
    """
    if not 0.0 <= nat_fraction <= 1.0:
        raise ValueError("nat_fraction must be in [0, 1]")
    addrs = np.asarray(addrs, dtype=np.uint32)
    num_nat = int(round(len(addrs) * nat_fraction))
    if num_nat > PRIVATE_192.size:
        raise ValueError("more NATed hosts than 192.168/16 address slots")
    chosen = rng.choice(len(addrs), size=num_nat, replace=False)
    slots = rng.choice(PRIVATE_192.size, size=num_nat, replace=False)
    private_addrs = (np.uint32(PRIVATE_192.network) + slots).astype(np.uint32)

    rewritten = addrs.copy()
    rewritten[chosen] = private_addrs
    rewritten.sort()
    deployment = NATDeployment(
        private_addrs, intra_private_model=intra_private_model
    )
    return rewritten, deployment
