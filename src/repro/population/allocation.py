"""Synthetic organizational address allocations.

Table 2 compares infections leaking from Fortune-100 enterprise
allocations against broadband ISP allocations.  The real allocations
come from ARIN; we synthesize organizations with the same gross
structure: enterprises hold a handful of /16s (large companies manage
hundreds of thousands of addresses), broadband ISPs hold /8-to-/10
scale blocks serving millions of subscribers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.net.cidr import BlockSet, CIDRBlock


@dataclass(frozen=True)
class OrganizationAllocation:
    """One organization's address holdings."""

    name: str
    kind: str  # "enterprise" | "broadband"
    blocks: BlockSet

    @property
    def address_count(self) -> int:
        """Total addresses allocated to this organization."""
        return self.blocks.address_count


def _distinct_slash16s(
    count: int, rng: np.random.Generator, used: set[int], first_octets: Sequence[int]
) -> list[CIDRBlock]:
    """Pick ``count`` fresh /16s within the given first octets."""
    blocks: list[CIDRBlock] = []
    attempts = 0
    while len(blocks) < count:
        attempts += 1
        if attempts > 100_000:
            raise RuntimeError("address space exhausted while allocating /16s")
        octet_a = int(rng.choice(first_octets))
        octet_b = int(rng.integers(0, 256))
        prefix = (octet_a << 8) | octet_b
        if prefix in used:
            continue
        used.add(prefix)
        blocks.append(CIDRBlock(prefix << 16, 16))
    return blocks


def synthesize_enterprises(
    count: int,
    rng: np.random.Generator,
    first_octets: Sequence[int] = tuple(range(129, 170)),
    slash16s_per_org: tuple[int, int] = (2, 8),
) -> list[OrganizationAllocation]:
    """Synthetic Fortune-100-style enterprises.

    Each enterprise receives between ``slash16s_per_org`` /16 blocks
    (hundreds of thousands of addresses, per the paper), drawn without
    overlap from legacy class-B style space.
    """
    used: set[int] = set()
    organizations = []
    for index in range(count):
        num_blocks = int(rng.integers(slash16s_per_org[0], slash16s_per_org[1] + 1))
        blocks = _distinct_slash16s(num_blocks, rng, used, first_octets)
        organizations.append(
            OrganizationAllocation(
                name=f"enterprise-{index:03d}",
                kind="enterprise",
                blocks=BlockSet(blocks),
            )
        )
    return organizations


def synthesize_broadband_isps(
    count: int,
    rng: np.random.Generator,
    first_octets: Sequence[int] = (24, 65, 66, 67, 68, 69, 70, 71, 98, 99),
    slash10s_per_org: tuple[int, int] = (2, 6),
) -> list[OrganizationAllocation]:
    """Synthetic broadband providers holding /10-scale blocks."""
    available = [
        (octet << 24) | (quadrant << 22)
        for octet in first_octets
        for quadrant in range(4)
    ]
    rng.shuffle(available)
    organizations = []
    cursor = 0
    for index in range(count):
        num_blocks = int(rng.integers(slash10s_per_org[0], slash10s_per_org[1] + 1))
        if cursor + num_blocks > len(available):
            raise ValueError("not enough /10 blocks for the requested ISPs")
        blocks = [
            CIDRBlock(network, 10)
            for network in available[cursor : cursor + num_blocks]
        ]
        cursor += num_blocks
        organizations.append(
            OrganizationAllocation(
                name=f"isp-{chr(ord('A') + index)}",
                kind="broadband",
                blocks=BlockSet(blocks),
            )
        )
    return organizations


def place_infected_hosts(
    organizations: Iterable[OrganizationAllocation],
    infected_per_org: Sequence[int],
    rng: np.random.Generator,
) -> dict[str, np.ndarray]:
    """Scatter infected hosts inside each organization's blocks.

    Returns a mapping of organization name to the infected addresses.
    The per-organization counts model internal infection prevalence
    *before* any egress filtering is applied — the paper's point is
    that filtering hides them from external view, not that enterprises
    have none.
    """
    organizations = list(organizations)
    if len(infected_per_org) != len(organizations):
        raise ValueError("infected_per_org must align with organizations")
    placements: dict[str, np.ndarray] = {}
    for organization, count in zip(organizations, infected_per_org):
        if count < 0:
            raise ValueError("infection counts must be non-negative")
        addrs = organization.blocks.random_addresses(int(count), rng)
        placements[organization.name] = np.unique(addrs)
    return placements
