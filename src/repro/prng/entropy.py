"""Boot-time entropy model for ``GetTickCount()`` seeds.

The paper instruments rebooting machines with a registry-launched
logger and finds that ``GetTickCount()`` at worm start time — i.e. the
Blaster PRNG seed — is tightly clustered: mean boot time ≈ 30 s with a
≈ 1 s standard deviation per hardware generation, so the effective
seed space is a few thousand values instead of 2^32.

Since we cannot rerun the paper's Pentium II/III/IV measurements, this
module models each hardware generation as a Gaussian over tick counts
(1 tick = 1 ms), with the paper's headline moments as defaults.
"""

from __future__ import annotations

import math

from dataclasses import dataclass
from typing import Mapping, Optional

import numpy as np

MILLISECONDS_PER_SECOND = 1000


@dataclass(frozen=True)
class HardwareGeneration:
    """Boot-time distribution for one hardware generation."""

    name: str
    mean_boot_seconds: float
    std_boot_seconds: float


#: The three generations measured in the paper's reboot study.  The
#: per-generation means are staggered around the reported 30 s mean;
#: each has the reported ~1 s standard deviation.
HARDWARE_GENERATIONS: Mapping[str, HardwareGeneration] = {
    "pentium2": HardwareGeneration("pentium2", 34.0, 1.0),
    "pentium3": HardwareGeneration("pentium3", 30.0, 1.0),
    "pentium4": HardwareGeneration("pentium4", 26.0, 1.0),
}


@dataclass(frozen=True)
class BootTimeModel:
    """Samples ``GetTickCount()`` seeds for freshly rebooted hosts.

    Parameters
    ----------
    generation_weights:
        Relative prevalence of each hardware generation in the
        population; defaults to a uniform mix of the paper's three.
    uptime_fraction:
        Fraction of hosts that did *not* just reboot, whose tick count
        is instead drawn uniformly from ``[0, max_uptime_ticks)``.
        The paper's cross-check maps cold address ranges back to
        "improbable boot times of hours to days"; this knob produces
        those hosts.
    max_uptime_ticks:
        Upper bound of the long-uptime draw (default 2.8 h, the range
        the paper sweeps when building its seed-to-target map).
    launch_delay_median_seconds:
        Median of a lognormal delay between boot completion and the
        worm process starting (services loading, registry run-key
        order).  The paper's recovered Blaster seeds range from ~1 to
        ~20 minutes centred on 4-5 minutes — i.e. the *worm-start*
        tick, not the bare boot time.  0 disables the delay.
    launch_delay_sigma:
        Lognormal shape; 0.5 puts ±3σ at roughly [1 min, 20 min] for
        a 4.5-minute median.
    tick_resolution_ms:
        ``GetTickCount()`` advances in ~10-16 ms steps on real
        hardware; quantizing seeds to this grid is what makes many
        hosts share exactly the same seed (and hence the same scan
        start — the spike mechanism of Figure 1).
    """

    generation_weights: Optional[Mapping[str, float]] = None
    uptime_fraction: float = 0.0
    max_uptime_ticks: int = 10_000_000
    launch_delay_median_seconds: float = 0.0
    launch_delay_sigma: float = 0.5
    tick_resolution_ms: int = 1

    def _generations(self) -> tuple[list[HardwareGeneration], np.ndarray]:
        weights = self.generation_weights or {
            name: 1.0 for name in HARDWARE_GENERATIONS
        }
        gens = [HARDWARE_GENERATIONS[name] for name in weights]
        probs = np.array([weights[gen.name] for gen in gens], dtype=float)
        return gens, probs / probs.sum()

    def sample_seeds(self, count: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``count`` tick-count seeds (``uint32``)."""
        if count < 0:
            raise ValueError("count must be non-negative")
        gens, probs = self._generations()
        choices = rng.choice(len(gens), size=count, p=probs)
        means = np.array([gen.mean_boot_seconds for gen in gens])[choices]
        stds = np.array([gen.std_boot_seconds for gen in gens])[choices]
        seconds = rng.normal(means, stds)
        if self.launch_delay_median_seconds > 0:
            seconds = seconds + rng.lognormal(
                np.log(self.launch_delay_median_seconds),
                self.launch_delay_sigma,
                size=count,
            )
        ticks = np.maximum(seconds, 0.001) * MILLISECONDS_PER_SECOND
        if self.uptime_fraction > 0:
            long_uptime = rng.random(count) < self.uptime_fraction
            ticks[long_uptime] = rng.integers(
                0, self.max_uptime_ticks, size=int(long_uptime.sum())
            )
        if self.tick_resolution_ms > 1:
            ticks = (
                ticks // self.tick_resolution_ms
            ) * self.tick_resolution_ms
        return ticks.astype(np.uint32)

    def seed_probability_window(self) -> tuple[int, int]:
        """The (low, high) tick window that reboot seeds fall into.

        Three standard deviations around the extreme generation means;
        used to classify observed hotspots as "plausible boot time" or
        not, mirroring the paper's cross-check.
        """
        gens, _ = self._generations()
        low = min(g.mean_boot_seconds - 3 * g.std_boot_seconds for g in gens)
        high = max(g.mean_boot_seconds + 3 * g.std_boot_seconds for g in gens)
        if self.launch_delay_median_seconds > 0:
            low += self.launch_delay_median_seconds * math.exp(
                -3 * self.launch_delay_sigma
            )
            high += self.launch_delay_median_seconds * math.exp(
                3 * self.launch_delay_sigma
            )
        return (
            int(max(low, 0) * MILLISECONDS_PER_SECOND),
            int(high * MILLISECONDS_PER_SECOND),
        )
