"""Cycle structure of affine maps ``f(x) = a*x + b (mod 2^n)``.

The Slammer worm's target generator is such a map with ``a`` odd, so
``f`` is a permutation of ``Z/2^n`` and the address space decomposes
into disjoint cycles.  A Slammer instance's scanning footprint *is*
the cycle its seed lands in, which is why the paper's per-host traces
(Figure 3a/b) are so skewed and why short cycles act like targeted
denial of service.

This module computes the full cycle decomposition **analytically** for
``a ≡ 1 (mod 4)`` — which covers both the Slammer LCG and Microsoft's
CRT ``rand()`` (both use ``a = 214013``):

Let ``d = v2(a - 1) >= 2`` be the 2-adic valuation of ``a - 1``.

* If ``v2(b) >= d``, the map has ``2^d`` fixed points ``c`` solving
  ``(a-1)c ≡ -b``, and conjugating by one of them reduces ``f`` to
  pure multiplication ``y -> a*y`` with ``y = x - c``.  The orbit of
  ``y`` has length ``ord(a mod 2^(n-v)) = 2^(n-v-d)`` where
  ``v = v2(y)`` (length 1 when the exponent is non-positive).  Since
  ``<a>`` is exactly the subgroup ``{u ≡ 1 mod 2^d}`` of the units,
  counting cosets gives ``2^(d-1)`` cycles of length ``2^(n-v-d)``
  for each ``v = 0 .. n-d-1``, plus ``2^d`` fixed points.  For
  Slammer (``n = 32, d = 2``) that is ``2*30 + 4 = 64`` cycles,
  matching the count reported in the paper.

* If ``v2(b) < d`` there is no fixed point, ``x mod 2^(v2(b))`` is an
  invariant of ``f``, and every cycle has the same length
  ``2^(n - v2(b))`` (there are ``2^(v2(b))`` of them).

``brute_force_cycles`` enumerates cycles directly and is used by the
test suite to verify the theory for every small modulus.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

#: Sentinel valuation for zero ("infinite" valuation) — larger than
#: any word size we support.
INFINITE_VALUATION = 64


def v2(x: int) -> int:
    """2-adic valuation: exponent of the largest power of 2 dividing ``x``.

    ``v2(0)`` returns :data:`INFINITE_VALUATION`.
    """
    if x == 0:
        return INFINITE_VALUATION
    return (x & -x).bit_length() - 1


def v2_array(values: np.ndarray) -> np.ndarray:
    """Vectorized :func:`v2` for unsigned integer arrays."""
    values = np.asarray(values, dtype=np.uint64)
    low_bit = values & (~values + np.uint64(1))
    out = np.full(values.shape, INFINITE_VALUATION, dtype=np.int64)
    nonzero = values != 0
    # log2 of an exact power of two is exact in float64 up to 2^63.
    out[nonzero] = np.log2(low_bit[nonzero].astype(np.float64)).astype(np.int64)
    return out


def modinv_pow2(x: int, bits: int) -> int:
    """Inverse of odd ``x`` modulo ``2**bits`` by Newton iteration."""
    if x % 2 == 0:
        raise ValueError("only odd numbers are invertible modulo a power of two")
    mask = (1 << bits) - 1
    inv = 1
    for _ in range(bits.bit_length() + 1):
        inv = (inv * (2 - x * inv)) & mask
    return inv & mask


def multiplicative_order_mod_pow2(a: int, bits: int) -> int:
    """Order of odd ``a`` in the unit group of ``Z/2^bits``."""
    mask = (1 << bits) - 1
    a &= mask
    if a == 1 or bits == 0:
        return 1
    order = 1
    power = a
    while power != 1:
        power = (power * power) & mask
        order *= 2
        if order > (1 << bits):
            raise ArithmeticError("order computation diverged (a even?)")
    return order


@dataclass(frozen=True)
class CycleInfo:
    """One class of cycles of an affine permutation.

    Attributes
    ----------
    length:
        Number of states in each cycle of this class.
    count:
        How many distinct cycles share this length/valuation.
    valuation:
        2-adic valuation ``v2(x - c)`` of the cycles' members in the
        conjugated coordinate (``None`` for fixed points and for the
        fixed-point-free case).
    representative:
        One state belonging to a cycle of this class.
    """

    length: int
    count: int
    valuation: Optional[int]
    representative: int


@dataclass(frozen=True)
class AffineCycleStructure:
    """Complete cycle decomposition of ``x -> a*x + b (mod 2^bits)``."""

    a: int
    b: int
    bits: int
    cycles: tuple[CycleInfo, ...]
    fixed_point: Optional[int]

    @property
    def total_cycles(self) -> int:
        """Total number of distinct cycles."""
        return sum(info.count for info in self.cycles)

    @property
    def cycle_lengths(self) -> list[int]:
        """Every cycle length, one entry per cycle, sorted ascending."""
        lengths: list[int] = []
        for info in self.cycles:
            lengths.extend([info.length] * info.count)
        return sorted(lengths)

    def total_states(self) -> int:
        """Sum of ``length * count`` over all cycles (equals ``2^bits``)."""
        return sum(info.length * info.count for info in self.cycles)

    @property
    def _d(self) -> int:
        return v2((self.a - 1) & ((1 << self.bits) - 1))

    def cycle_length_of_state(self, state: int) -> int:
        """Length of the cycle containing ``state`` (O(1) via theory)."""
        mask = (1 << self.bits) - 1
        state &= mask
        if self.fixed_point is None:
            return 1 << (self.bits - v2(self.b & mask))
        y = (state - self.fixed_point) & mask
        if y == 0:
            return 1
        exponent = self.bits - v2(y) - self._d
        return 1 << exponent if exponent > 0 else 1

    def cycle_lengths_of_states(self, states: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`cycle_length_of_state` for a batch."""
        mask = np.uint64((1 << self.bits) - 1)
        states = np.asarray(states, dtype=np.uint64) & mask
        if self.fixed_point is None:
            length = 1 << (self.bits - v2(self.b & int(mask)))
            return np.full(states.shape, length, dtype=np.int64)
        y = (states - np.uint64(self.fixed_point)) & mask
        exponents = self.bits - v2_array(y) - self._d
        return np.int64(1) << np.maximum(exponents, 0)

    def cycle_id_of_state(self, state: int) -> tuple[str, int, int]:
        """A stable identifier of the cycle containing ``state``.

        Two states are on the same cycle iff their identifiers are
        equal.  The identifier is one of:

        * ``("fixed", y, 0)`` for fixed points (``y = state - c``);
        * ``("orbit", v, u)`` with ``v = v2(y)`` and
          ``u = (y >> v) mod 2^d`` (a complete coset invariant since
          ``<a> = {u ≡ 1 mod 2^d}``);
        * ``("residue", 0, state mod 2^(v2(b)))`` in the
          fixed-point-free case (the residue is invariant under f).
        """
        mask = (1 << self.bits) - 1
        state &= mask
        if self.fixed_point is None:
            return ("residue", 0, state % (1 << v2(self.b & mask)))
        d = self._d
        y = (state - self.fixed_point) & mask
        if y == 0 or self.bits - v2(y) - d <= 0:
            return ("fixed", y, 0)
        v = v2(y)
        return ("orbit", v, (y >> v) % (1 << d))


def cycle_structure(a: int, b: int, bits: int = 32) -> AffineCycleStructure:
    """Analytic cycle decomposition of ``x -> a*x + b (mod 2^bits)``.

    Supports ``a = 1`` (translations) and ``a ≡ 1 (mod 4)``; for
    ``a ≡ 3 (mod 4)`` the unit-group bookkeeping differs and only
    :func:`brute_force_cycles` is provided.
    """
    mask = (1 << bits) - 1
    a &= mask
    b &= mask
    if a % 2 == 0:
        raise ValueError("a must be odd for the map to be a permutation")
    if a == 1:
        return _translation_structure(b, bits)
    if bits >= 2 and a % 4 == 3:
        raise NotImplementedError(
            "analytic structure implemented for a ≡ 1 (mod 4) only; "
            "use brute_force_cycles for small moduli"
        )

    d = v2(a - 1)
    vb = v2(b)

    if b != 0 and vb < d:
        length = 1 << (bits - vb)
        cycles = (
            CycleInfo(length=length, count=1 << vb, valuation=None, representative=0),
        )
        return AffineCycleStructure(a=a, b=b, bits=bits, cycles=cycles, fixed_point=None)

    # A fixed point exists: (a-1) c ≡ -b with a-1 = 2^d * m, m odd.
    m = (a - 1) >> d
    if b == 0:
        c = 0
    else:
        b_reduced = ((-b) & mask) >> d
        c = (b_reduced * modinv_pow2(m, bits - d)) % (1 << (bits - d))

    cycles: list[CycleInfo] = []
    for valuation in range(max(bits - d, 0)):
        cycles.append(
            CycleInfo(
                length=1 << (bits - valuation - d),
                count=1 << (d - 1),
                valuation=valuation,
                representative=(c + (1 << valuation)) & mask,
            )
        )
    fixed_count = min(1 << d, 1 << bits)
    cycles.append(
        CycleInfo(length=1, count=fixed_count, valuation=None, representative=c)
    )
    return AffineCycleStructure(
        a=a, b=b, bits=bits, cycles=tuple(cycles), fixed_point=c
    )


def _translation_structure(b: int, bits: int) -> AffineCycleStructure:
    """Cycle structure of the pure translation ``x -> x + b``."""
    if b == 0:
        cycles = (
            CycleInfo(length=1, count=1 << bits, valuation=None, representative=0),
        )
        return AffineCycleStructure(a=1, b=0, bits=bits, cycles=cycles, fixed_point=0)
    count = 1 << v2(b)
    cycles = (
        CycleInfo(
            length=(1 << bits) // count, count=count, valuation=None, representative=0
        ),
    )
    return AffineCycleStructure(a=1, b=b, bits=bits, cycles=cycles, fixed_point=None)


def brute_force_cycles(a: int, b: int, bits: int) -> list[int]:
    """Enumerate all cycle lengths by direct iteration (small ``bits`` only).

    Returns the sorted list of cycle lengths.  Used to validate
    :func:`cycle_structure` in tests.
    """
    if bits > 22:
        raise ValueError("brute force limited to bits <= 22")
    size = 1 << bits
    mask = size - 1
    successor = (a * np.arange(size, dtype=np.int64) + b) & mask
    visited = np.zeros(size, dtype=bool)
    lengths: list[int] = []
    for start in range(size):
        if visited[start]:
            continue
        length = 0
        node = start
        while not visited[node]:
            visited[node] = True
            node = int(successor[node])
            length += 1
        lengths.append(length)
    return sorted(lengths)


def cycle_members(
    a: int, b: int, bits: int, start: int, limit: int
) -> np.ndarray:
    """Iterate the affine map from ``start`` until the cycle closes.

    Stops after ``limit`` steps even if the cycle has not closed, so
    callers can sample long cycles safely.  Returns the visited states
    (including ``start``) as ``uint64``.
    """
    mask = (1 << bits) - 1
    out = [start & mask]
    state = start & mask
    for _ in range(limit):
        state = (a * state + b) & mask
        if state == out[0]:
            break
        out.append(state)
    return np.array(out, dtype=np.uint64)
