"""Microsoft CRT ``rand()`` — the Blaster worm's PRNG.

The Visual C runtime implements ``rand()`` as the LCG
``state = state * 214013 + 2531011 (mod 2^32)`` and returns bits 16-30
of the state (``(state >> 16) & 0x7fff``).  Blaster calls ``srand``
with ``GetTickCount()`` at startup, which is the poor entropy source
the paper dissects.
"""

from __future__ import annotations

import numpy as np

MS_RAND_A = 214013
MS_RAND_B = 2531011
RAND_MAX = 0x7FFF


class MSRand:
    """Bit-exact Microsoft CRT ``rand()``/``srand()``."""

    def __init__(self, seed: int = 1):
        self.state = seed & 0xFFFFFFFF

    def srand(self, seed: int) -> None:
        """Reset the state, exactly like CRT ``srand``."""
        self.state = seed & 0xFFFFFFFF

    def rand(self) -> int:
        """Next value in ``[0, 32767]``."""
        self.state = (self.state * MS_RAND_A + MS_RAND_B) & 0xFFFFFFFF
        return (self.state >> 16) & RAND_MAX

    def randint(self, modulus: int) -> int:
        """``rand() % modulus`` — the idiom worm code uses."""
        return self.rand() % modulus

    def stream(self, count: int) -> np.ndarray:
        """The next ``count`` outputs of ``rand()`` as an int64 array."""
        out = np.empty(count, dtype=np.int64)
        state = self.state
        for i in range(count):
            state = (state * MS_RAND_A + MS_RAND_B) & 0xFFFFFFFF
            out[i] = (state >> 16) & RAND_MAX
        self.state = state
        return out


def msrand_outputs_for_seeds(seeds: np.ndarray, count: int) -> np.ndarray:
    """Vectorized: the first ``count`` ``rand()`` outputs for many seeds.

    Returns an array of shape ``(len(seeds), count)``.  Used by the
    Blaster seed-to-target mapping, which must sweep millions of
    candidate ``GetTickCount()`` seeds.
    """
    states = np.asarray(seeds, dtype=np.uint64) & np.uint64(0xFFFFFFFF)
    outputs = np.empty((len(states), count), dtype=np.int64)
    a = np.uint64(MS_RAND_A)
    b = np.uint64(MS_RAND_B)
    mask = np.uint64(0xFFFFFFFF)
    for i in range(count):
        states = (states * a + b) & mask
        outputs[:, i] = ((states >> np.uint64(16)) & np.uint64(RAND_MAX)).astype(
            np.int64
        )
    return outputs
