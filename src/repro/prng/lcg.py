"""Linear congruential generators.

An LCG iterates ``s(i+1) = a*s(i) + b  (mod 2^n)``.  Slammer's target
generator is exactly this map with ``a = 214013`` and a corrupted
``b`` (see :mod:`repro.worms.slammer`).
"""

from __future__ import annotations

import numpy as np


class LCG:
    """A linear congruential generator modulo ``2**bits``.

    Parameters
    ----------
    a, b:
        Multiplier and increment.
    bits:
        Word size; the modulus is ``2**bits``.  Defaults to 32, the
        word size of every worm studied in the paper.
    seed:
        Initial state.
    """

    def __init__(self, a: int, b: int, bits: int = 32, seed: int = 0):
        if bits <= 0 or bits > 64:
            raise ValueError(f"unsupported word size: {bits}")
        self.a = a % (1 << bits)
        self.b = b % (1 << bits)
        self.bits = bits
        self.mask = (1 << bits) - 1
        self.state = seed & self.mask

    def seed(self, value: int) -> None:
        """Reset the generator state."""
        self.state = value & self.mask

    def next(self) -> int:
        """Advance one step and return the new state."""
        self.state = (self.a * self.state + self.b) & self.mask
        return self.state

    def stream(self, count: int) -> np.ndarray:
        """The next ``count`` states as a ``uint64`` array.

        The state sequence is inherently serial, but computing it with
        numpy scalars in a tight loop is still the dominant cost, so we
        run the recurrence in pure Python ints (fast enough) and bulk
        convert at the end.
        """
        out = np.empty(count, dtype=np.uint64)
        state, a, b, mask = self.state, self.a, self.b, self.mask
        for i in range(count):
            state = (a * state + b) & mask
            out[i] = state
        self.state = state
        return out

    def stream_fast(self, count: int, block: int = 4096) -> np.ndarray:
        """The next ``count`` states, computed with blocked vectorization.

        The serial recurrence ``s -> a*s + b`` unrolls to
        ``s_k = a^k * s + b_k`` for any stride ``k``, so one block of
        ``block`` successive states is a single vectorized expression
        in the precomputed ``(a^k, b_k)`` tables.  Orders of magnitude
        faster than :meth:`stream` for multi-million-step replays
        (e.g. reproducing a Slammer host's full scanning footprint).
        Only supported for ``bits <= 32`` (the products must fit in
        uint64 without overflow).
        """
        if self.bits > 32:
            raise ValueError("stream_fast supports word sizes up to 32 bits")
        if count <= 0:
            return np.empty(0, dtype=np.uint64)
        block = min(block, count)
        # Tables of the k-step composed map for k = 1..block.
        a_powers = np.empty(block, dtype=np.uint64)
        b_offsets = np.empty(block, dtype=np.uint64)
        a_k, b_k = 1, 0
        mask = self.mask
        for k in range(block):
            a_k, b_k = (a_k * self.a) & mask, (b_k * self.a + self.b) & mask
            a_powers[k] = a_k
            b_offsets[k] = b_k
        out = np.empty(count, dtype=np.uint64)
        mask64 = np.uint64(mask)
        position = 0
        state = np.uint64(self.state)
        while position < count:
            width = min(block, count - position)
            chunk = (a_powers[:width] * state + b_offsets[:width]) & mask64
            out[position : position + width] = chunk
            state = chunk[-1]
            position += width
        self.state = int(state)
        return out

    def jump(self, steps: int) -> int:
        """Advance ``steps`` steps in O(log steps) and return the state.

        Uses ``f^k(x) = a^k x + b (a^k - 1) / (a - 1)`` computed by
        repeated squaring of the affine map.
        """
        a_k, b_k = 1, 0  # composed map: x -> a_k * x + b_k
        a_step, b_step = self.a, self.b
        remaining = steps
        mask = self.mask
        while remaining:
            if remaining & 1:
                a_k, b_k = (a_k * a_step) & mask, (b_k * a_step + b_step) & mask
            a_step, b_step = (a_step * a_step) & mask, (b_step * a_step + b_step) & mask
            remaining >>= 1
        self.state = (a_k * self.state + b_k) & mask
        return self.state
