"""Pseudo-random number generator substrate.

The paper's algorithmic-factor case studies are PRNG forensics: the
Blaster worm seeds Microsoft's CRT ``rand()`` from ``GetTickCount()``,
and the Slammer worm uses a linear congruential generator whose
increment is corrupted by an ``OR``-for-``XOR`` coding bug.  This
package implements those generators exactly and provides the cycle
theory needed to predict their hotspots.

Modules
-------
``lcg``
    Generic linear congruential generators, scalar and vectorized.
``msrand``
    Microsoft CRT ``rand()``/``srand()`` (the Blaster PRNG).
``cycles``
    Analytic cycle structure of affine maps ``x -> a*x + b (mod 2^n)``
    plus brute-force enumeration for small ``n`` used in tests.
``entropy``
    The ``GetTickCount()`` boot-time entropy model from the paper's
    reboot-measurement study.
"""

from repro.prng.cycles import (
    AffineCycleStructure,
    CycleInfo,
    brute_force_cycles,
    cycle_structure,
)
from repro.prng.entropy import BootTimeModel, HARDWARE_GENERATIONS
from repro.prng.lcg import LCG
from repro.prng.msrand import MSRand

__all__ = [
    "AffineCycleStructure",
    "BootTimeModel",
    "CycleInfo",
    "HARDWARE_GENERATIONS",
    "LCG",
    "MSRand",
    "brute_force_cycles",
    "cycle_structure",
]
