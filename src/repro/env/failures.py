"""Network failures and misconfigurations.

"Dropped and mangled packets can significantly impact the probability
of a successful infection" — modelled as a base loss rate for the
whole Internet plus elevated per-region rates standing in for broken
equipment, congested links, and misconfigured devices on particular
paths.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.net.cidr import CIDRBlock


@dataclass(frozen=True)
class RegionLoss:
    """Extra loss applied to probes *toward* one region."""

    region: CIDRBlock
    loss_rate: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.loss_rate <= 1.0:
            raise ValueError(f"loss rate out of range: {self.loss_rate}")


class LossModel:
    """Independent per-probe loss with regional hot spots.

    Parameters
    ----------
    base_rate:
        Probability any probe is lost in transit.
    region_losses:
        Additional, independent loss applied when the *target* lies in
        the region (failure or misconfiguration near the destination).
    """

    def __init__(
        self,
        base_rate: float = 0.0,
        region_losses: Iterable[RegionLoss] = (),
    ):
        if not 0.0 <= base_rate <= 1.0:
            raise ValueError(f"base rate out of range: {base_rate}")
        self.base_rate = base_rate
        self.region_losses = list(region_losses)

    @property
    def is_active(self) -> bool:
        """Whether :meth:`deliverable` can ever drop a probe.

        When False the survive mask is all-True and *no RNG is
        consumed*, so callers (e.g. the sharded driver) may skip
        routing the mask without changing any random stream.
        """
        return self.base_rate > 0 or any(
            regional.loss_rate > 0 for regional in self.region_losses
        )

    def deliverable(
        self, targets: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Mask of probes that survive loss (sampled per call)."""
        targets = np.asarray(targets, dtype=np.uint32)
        survive = np.ones(targets.shape, dtype=bool)
        if self.base_rate > 0:
            survive &= rng.random(targets.shape) >= self.base_rate
        for regional in self.region_losses:
            if regional.loss_rate <= 0:
                continue
            inside = regional.region.contains_array(targets)
            if inside.any():
                dropped = rng.random(targets.shape) < regional.loss_rate
                survive &= ~(inside & dropped)
        return survive

    def delivery_probability(self, targets: np.ndarray) -> np.ndarray:
        """Expected delivery probability per probe (no sampling)."""
        targets = np.asarray(targets, dtype=np.uint32)
        prob = np.full(targets.shape, 1.0 - self.base_rate)
        for regional in self.region_losses:
            inside = regional.region.contains_array(targets)
            prob[inside] *= 1.0 - regional.loss_rate
        return prob
