"""Lightweight topology: latency and bandwidth between regions.

"Network topology ... determines message latency and bandwidth and
thus the rate at which an infection can progress."  The vectorized
epidemic simulator runs at one-second resolution, where per-probe
latency is invisible; this model exists for the packet-level
discrete-event kernel (:mod:`repro.sim.events`) and for bandwidth-
capped scan-rate adjustments (Slammer was famously bandwidth-limited).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.net.cidr import CIDRBlock


@dataclass(frozen=True)
class RegionLink:
    """Per-region access-link characteristics."""

    region: CIDRBlock
    latency_ms: float
    bandwidth_scans_per_sec: float

    def __post_init__(self) -> None:
        if self.latency_ms < 0:
            raise ValueError("latency must be non-negative")
        if self.bandwidth_scans_per_sec <= 0:
            raise ValueError("bandwidth must be positive")


class LatencyModel:
    """Base one-way latency plus per-region additions and jitter."""

    def __init__(
        self,
        base_ms: float = 50.0,
        jitter_ms: float = 10.0,
        region_links: Iterable[RegionLink] = (),
    ):
        if base_ms < 0 or jitter_ms < 0:
            raise ValueError("latencies must be non-negative")
        self.base_ms = base_ms
        self.jitter_ms = jitter_ms
        self.region_links = list(region_links)

    def sample_latency_ms(
        self,
        sources: np.ndarray,
        targets: np.ndarray,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """One-way latency per probe, in milliseconds."""
        targets = np.asarray(targets, dtype=np.uint32)
        sources = np.asarray(sources, dtype=np.uint32)
        latency = np.full(targets.shape, self.base_ms, dtype=float)
        for link in self.region_links:
            latency[link.region.contains_array(sources)] += link.latency_ms
            latency[link.region.contains_array(targets)] += link.latency_ms
        if self.jitter_ms > 0:
            latency += rng.exponential(self.jitter_ms, size=targets.shape)
        return latency


class Topology:
    """Region-level scan-rate caps (access bandwidth).

    A worm instance can emit at most its host's access-link budget;
    Slammer's aggregate was limited by exactly this.  The simulator
    asks for each infected host's effective scan rate.
    """

    def __init__(
        self,
        default_scan_rate: float,
        region_links: Iterable[RegionLink] = (),
    ):
        if default_scan_rate <= 0:
            raise ValueError("default scan rate must be positive")
        self.default_scan_rate = default_scan_rate
        self.region_links = list(region_links)

    def scan_rates(self, hosts: np.ndarray) -> np.ndarray:
        """Effective scans/second per host (region caps applied)."""
        hosts = np.asarray(hosts, dtype=np.uint32)
        rates = np.full(hosts.shape, self.default_scan_rate, dtype=float)
        for link in self.region_links:
            inside = link.region.contains_array(hosts)
            rates[inside] = np.minimum(
                rates[inside], link.bandwidth_scans_per_sec
            )
        return rates
