"""Routing and filtering policy.

Two policy behaviours from the paper's case studies:

* **Egress filtering** — Fortune-100-style enterprises block outgoing
  worm probes at their border, so infections inside never show up at
  external sensors (Table 2).
* **Ingress filtering** — the M sensor block "did not see any Slammer
  infection attempts ... due to policy blocking the worm deployed at
  its upstream provider" (Figure 2).

A rule names a direction, a CIDR region, and optionally the worm it
applies to (firewalls match on ports/payloads, so per-threat rules are
realistic).  Probes matching any rule are dropped.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Optional

import numpy as np

from repro.net.cidr import BlockSet, CIDRBlock


class FilterAction(enum.Enum):
    """What a matching rule does to a probe."""

    DROP = "drop"
    ALLOW = "allow"


@dataclass(frozen=True)
class FilterRule:
    """One filtering rule.

    Attributes
    ----------
    direction:
        ``"egress"`` — matches probes whose *source* is inside
        ``region`` and target outside it; ``"ingress"`` — matches
        probes whose *target* is inside ``region`` and source outside.
    region:
        The filtered network.
    worm:
        Restrict the rule to one worm name (``None`` = all worms);
        models port- or signature-specific firewall rules.
    action:
        :attr:`FilterAction.DROP` (default) or an explicit ALLOW that
        exempts matching probes from later DROP rules.
    """

    direction: str
    region: CIDRBlock
    worm: Optional[str] = None
    action: FilterAction = FilterAction.DROP

    def __post_init__(self) -> None:
        if self.direction not in ("egress", "ingress"):
            raise ValueError(f"unknown direction: {self.direction!r}")

    def matches(
        self, sources: np.ndarray, targets: np.ndarray, worm: Optional[str]
    ) -> np.ndarray:
        """Mask of probes this rule matches."""
        if self.worm is not None and worm != self.worm:
            return np.zeros(np.asarray(targets).shape, dtype=bool)
        source_inside = self.region.contains_array(sources)
        target_inside = self.region.contains_array(targets)
        if self.direction == "egress":
            return source_inside & ~target_inside
        return target_inside & ~source_inside


class FilteringPolicy:
    """An ordered rule list evaluated first-match-wins."""

    def __init__(self, rules: Iterable[FilterRule] = ()):
        self.rules = list(rules)

    @classmethod
    def egress_filtered_enterprises(
        cls, regions: Iterable[CIDRBlock], worm: Optional[str] = None
    ) -> "FilteringPolicy":
        """Convenience: egress-drop every region (the Table 2 setup)."""
        return cls(
            FilterRule("egress", region, worm=worm) for region in regions
        )

    def add(self, rule: FilterRule) -> None:
        """Append a rule (evaluated after all existing rules)."""
        self.rules.append(rule)

    def deliverable(
        self,
        sources: np.ndarray,
        targets: np.ndarray,
        worm: Optional[str] = None,
    ) -> np.ndarray:
        """Mask of probes the policy lets through (first match wins)."""
        targets = np.asarray(targets, dtype=np.uint32)
        sources = np.asarray(sources, dtype=np.uint32)
        ok = np.ones(targets.shape, dtype=bool)
        decided = np.zeros(targets.shape, dtype=bool)
        for rule in self.rules:
            matched = rule.matches(sources, targets, worm) & ~decided
            if not matched.any():
                continue
            ok[matched] = rule.action is FilterAction.ALLOW
            decided |= matched
        return ok

    @property
    def filtered_regions(self) -> BlockSet:
        """All DROP-rule regions, as one block set (for reporting)."""
        return BlockSet(
            rule.region for rule in self.rules if rule.action is FilterAction.DROP
        )
