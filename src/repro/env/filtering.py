"""Routing and filtering policy.

Two policy behaviours from the paper's case studies:

* **Egress filtering** — Fortune-100-style enterprises block outgoing
  worm probes at their border, so infections inside never show up at
  external sensors (Table 2).
* **Ingress filtering** — the M sensor block "did not see any Slammer
  infection attempts ... due to policy blocking the worm deployed at
  its upstream provider" (Figure 2).

A rule names a direction, a CIDR region, and optionally the worm it
applies to (firewalls match on ports/payloads, so per-threat rules are
realistic).  Probes matching any rule are dropped.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Optional

import numpy as np

from repro.net.cidr import BlockSet, CIDRBlock
from repro.net.kernels import kernels_enabled
from repro.net.prefixtree import PrefixTree

#: Above this many distinct regions the pair-decision table gets big
#: (``(regions+1)^2`` scalar replays); fall back to the per-rule scan.
_MAX_COMPILED_REGIONS = 256


class FilterAction(enum.Enum):
    """What a matching rule does to a probe."""

    DROP = "drop"
    ALLOW = "allow"


@dataclass(frozen=True)
class FilterRule:
    """One filtering rule.

    Attributes
    ----------
    direction:
        ``"egress"`` — matches probes whose *source* is inside
        ``region`` and target outside it; ``"ingress"`` — matches
        probes whose *target* is inside ``region`` and source outside.
    region:
        The filtered network.
    worm:
        Restrict the rule to one worm name (``None`` = all worms);
        models port- or signature-specific firewall rules.
    action:
        :attr:`FilterAction.DROP` (default) or an explicit ALLOW that
        exempts matching probes from later DROP rules.
    """

    direction: str
    region: CIDRBlock
    worm: Optional[str] = None
    action: FilterAction = FilterAction.DROP

    def __post_init__(self) -> None:
        if self.direction not in ("egress", "ingress"):
            raise ValueError(f"unknown direction: {self.direction!r}")

    def matches(
        self, sources: np.ndarray, targets: np.ndarray, worm: Optional[str]
    ) -> np.ndarray:
        """Mask of probes this rule matches."""
        if self.worm is not None and worm != self.worm:
            return np.zeros(np.asarray(targets).shape, dtype=bool)
        source_inside = self.region.contains_array(sources)
        target_inside = self.region.contains_array(targets)
        if self.direction == "egress":
            return source_inside & ~target_inside
        return target_inside & ~source_inside


class _PolicyKernel:
    """One policy × worm, compiled for batched evaluation.

    Every rule region is a CIDR block, so regions are pairwise nested
    or disjoint and an address's full region-membership set is a
    function of the *longest* matching region.  The kernel therefore:

    1. assigns each distinct region a bit and inserts it into a
       :class:`PrefixTree` carrying its *cumulative* mask (own bit ORed
       with every enclosing region's mask);
    2. compiles the tree, so one interval-locate maps an address to
       its membership mask's index;
    3. replays the first-match-wins rule scan once per *pair* of
       membership masks, caching the verdict in a 2-D decision table.

    A batch evaluation is then two index lookups and one fancy-index —
    independent of the rule count.
    """

    def __init__(self, rules: tuple[FilterRule, ...], worm: Optional[str]):
        applicable = [
            rule for rule in rules if rule.worm is None or rule.worm == worm
        ]
        regions = sorted({rule.region for rule in applicable})
        bit_of = {region: 1 << index for index, region in enumerate(regions)}
        tree: PrefixTree[int] = PrefixTree()
        stack: list[tuple[CIDRBlock, int]] = []
        for region in regions:  # sorted order = containment pre-order
            while stack and not (
                stack[-1][0].first <= region.first
                and region.last <= stack[-1][0].last
            ):
                stack.pop()
            mask = bit_of[region] | (stack[-1][1] if stack else 0)
            tree.insert(region, mask)
            stack.append((region, mask))
        self._lpm = tree.compile()
        # Miss mask (membership 0) lives in the LAST row/column so the
        # compiled lookup's miss sentinel (-1) lands on it for free via
        # numpy's negative indexing — no per-batch remapping needed.
        masks = list(self._lpm.values) + [0]
        decision = np.empty((len(masks), len(masks)), dtype=bool)
        for row, source_mask in enumerate(masks):
            for col, target_mask in enumerate(masks):
                decision[row, col] = self._replay(
                    applicable, bit_of, source_mask, target_mask
                )
        self._decision = decision

    @staticmethod
    def _replay(
        applicable: list[FilterRule],
        bit_of: dict[CIDRBlock, int],
        source_mask: int,
        target_mask: int,
    ) -> bool:
        """First-match-wins verdict for one membership-mask pair."""
        for rule in applicable:
            bit = bit_of[rule.region]
            source_inside = bool(source_mask & bit)
            target_inside = bool(target_mask & bit)
            if rule.direction == "egress":
                matched = source_inside and not target_inside
            else:
                matched = target_inside and not source_inside
            if matched:
                return rule.action is FilterAction.ALLOW
        return True

    @property
    def decision_table(self) -> np.ndarray:
        """The (masks+1)^2 verdict table; last row/column is the miss
        slot, so membership indices (including the ``-1`` sentinel)
        index it directly.  Treat as read-only."""
        return self._decision

    def deliverable(
        self, sources: np.ndarray, targets: np.ndarray
    ) -> np.ndarray:
        return self._decision[
            self._lpm.lookup_indices(sources),
            self._lpm.lookup_indices(targets),
        ]

    def deliverable_from_indices(
        self, source_indices: np.ndarray, target_indices: np.ndarray
    ) -> np.ndarray:
        """Verdicts from precomputed membership indices.

        The fused tick path resolves target membership through the
        merged partition and caches per-host source membership, so the
        two locates of :meth:`deliverable` vanish; the ``-1`` miss
        sentinel still lands on the decision table's last row/column
        via negative indexing.
        """
        return self._decision[source_indices, target_indices]

    def source_membership(self, addrs: np.ndarray) -> np.ndarray:
        """Membership-mask index per source address (``-1`` = miss)."""
        return self._lpm.lookup_indices(addrs)

    def partition_component(self) -> tuple[np.ndarray, np.ndarray]:
        """The membership LPM in partition form for merging.

        ``values[locate(addrs)]`` equals ``lookup_indices(addrs)`` —
        the target-side half of :meth:`deliverable`.
        """
        return self._lpm.interval_starts, self._lpm.interval_value_index


class FilteringPolicy:
    """An ordered rule list evaluated first-match-wins.

    Batches evaluate through a compiled kernel (see
    :class:`_PolicyKernel`) built lazily per worm name and invalidated
    whenever the rule list changes; the per-rule reference scan stays
    available for the equivalence tests via ``use_compiled = False``
    or :func:`repro.net.kernels.kernel_override`.
    """

    def __init__(self, rules: Iterable[FilterRule] = ()):
        self.rules = list(rules)
        self.use_compiled = True
        self._kernel_rules: Optional[tuple[FilterRule, ...]] = None
        self._kernels: dict[Optional[str], _PolicyKernel] = {}

    @classmethod
    def egress_filtered_enterprises(
        cls, regions: Iterable[CIDRBlock], worm: Optional[str] = None
    ) -> "FilteringPolicy":
        """Convenience: egress-drop every region (the Table 2 setup)."""
        return cls(
            FilterRule("egress", region, worm=worm) for region in regions
        )

    def add(self, rule: FilterRule) -> None:
        """Append a rule (evaluated after all existing rules)."""
        self.rules.append(rule)

    def _kernel(self, worm: Optional[str]) -> _PolicyKernel:
        """The compiled kernel for ``worm``, rebuilt after rule edits."""
        snapshot = tuple(self.rules)
        if self._kernel_rules != snapshot:
            self._kernels = {}
            self._kernel_rules = snapshot
        kernel = self._kernels.get(worm)
        if kernel is None:
            kernel = _PolicyKernel(snapshot, worm)
            self._kernels[worm] = kernel
        return kernel

    def compiled_kernel(self, worm: Optional[str]) -> Optional[_PolicyKernel]:
        """The compiled kernel batches route through, or ``None``.

        ``None`` means batches take the reference scan (no rules,
        compilation disabled, kernels globally off, or more distinct
        regions than the pair-decision table supports).  Kernel object
        identity doubles as the version stamp: any rule-list edit
        produces a fresh kernel, so holders of a merged partition can
        invalidate by ``is`` comparison.
        """
        if not self.rules or not self.use_compiled or not kernels_enabled():
            return None
        if len({rule.region for rule in self.rules}) > _MAX_COMPILED_REGIONS:
            return None
        return self._kernel(worm)

    def deliverable(
        self,
        sources: np.ndarray,
        targets: np.ndarray,
        worm: Optional[str] = None,
    ) -> np.ndarray:
        """Mask of probes the policy lets through (first match wins)."""
        targets = np.asarray(targets, dtype=np.uint32)
        sources = np.asarray(sources, dtype=np.uint32)
        if not self.rules:
            return np.ones(targets.shape, dtype=bool)
        kernel = self.compiled_kernel(worm)
        if kernel is not None:
            return kernel.deliverable(sources, targets)
        return self._deliverable_reference(sources, targets, worm)

    def _deliverable_reference(
        self,
        sources: np.ndarray,
        targets: np.ndarray,
        worm: Optional[str] = None,
    ) -> np.ndarray:
        """The per-rule scan the kernel is checked against."""
        ok = np.ones(targets.shape, dtype=bool)
        decided = np.zeros(targets.shape, dtype=bool)
        for rule in self.rules:
            matched = rule.matches(sources, targets, worm) & ~decided
            if not matched.any():
                continue
            ok[matched] = rule.action is FilterAction.ALLOW
            decided |= matched
        return ok

    @property
    def filtered_regions(self) -> BlockSet:
        """All DROP-rule regions, as one block set (for reporting)."""
        return BlockSet(
            rule.region for rule in self.rules if rule.action is FilterAction.DROP
        )
