"""NAT gateways and private-address reachability semantics.

The paper's CodeRedII case study hinges on hosts that live at RFC 1918
addresses behind NAT devices.  The reachability rules this module
implements:

* **private source → public target**: deliverable (outbound NAT
  translation works — this is how the 192.168 hotspot leaks out);
* **any source → private target**: deliverable only when source and
  target sit behind the *same* NAT (same "realm"); private addresses
  are not routed on the public Internet and inbound connections
  through a NAT fail;
* **public source → public target**: not this module's concern.

A *realm* is one private network instance (a home or an enterprise
site).  Millions of disjoint networks reuse 192.168/16, so realm
membership — not the address — decides reachability.
"""

from __future__ import annotations

import numpy as np

from repro.net.special import is_private

NO_REALM = -1


class NATDeployment:
    """Assigns (some) hosts to NAT realms and answers reachability.

    Parameters
    ----------
    host_addrs:
        Addresses of the NATed hosts (typically RFC 1918 addresses).
        Hosts not listed here are public, un-NATed hosts.
    realm_ids:
        Realm identifier per host; hosts sharing an id sit behind the
        same NAT and can reach each other directly.  Defaults to a
        distinct realm per host (every host alone behind its own home
        NAT), the worst case for worm spread and the common broadband
        deployment.
    intra_private_model:
        ``"strict"`` (default): a private target is reachable only
        from a source in the same realm.  ``"statistical"``: a probe
        from any *private* source to a private target address reaches
        the simulated host holding that address.  The statistical mode
        models the real-world ensemble in which millions of disjoint
        networks reuse 192.168/16 — a locally preferred probe to
        192.168.x.y always stays inside the prober's own realm and
        hits *somebody's* host there; the unique address slots of this
        simulation stand in for that population in aggregate.  The
        paper's Figure 5(c) experiment uses this mode.
    """

    def __init__(
        self,
        host_addrs: np.ndarray,
        realm_ids: np.ndarray | None = None,
        intra_private_model: str = "strict",
    ):
        if intra_private_model not in ("strict", "statistical"):
            raise ValueError(
                f"unknown intra_private_model: {intra_private_model!r}"
            )
        self.intra_private_model = intra_private_model
        host_addrs = np.asarray(host_addrs, dtype=np.uint32)
        if realm_ids is None:
            realm_ids = np.arange(len(host_addrs), dtype=np.int64)
        realm_ids = np.asarray(realm_ids, dtype=np.int64)
        if len(realm_ids) != len(host_addrs):
            raise ValueError("realm_ids must align with host_addrs")
        if len(np.unique(host_addrs)) != len(host_addrs):
            raise ValueError(
                "duplicate NATed host addresses: within this model each "
                "simulated private host needs a unique address; realms "
                "express sharing"
            )
        order = np.argsort(host_addrs)
        self._addrs = host_addrs[order]
        self._realms = realm_ids[order]

    @classmethod
    def empty(cls) -> "NATDeployment":
        """A deployment with no NATed hosts."""
        return cls(np.empty(0, dtype=np.uint32))

    @property
    def num_hosts(self) -> int:
        """Number of NATed hosts."""
        return len(self._addrs)

    def realm_of(self, addrs: np.ndarray) -> np.ndarray:
        """Realm id per address (:data:`NO_REALM` for public hosts)."""
        addrs = np.asarray(addrs, dtype=np.uint32)
        out = np.full(addrs.shape, NO_REALM, dtype=np.int64)
        if not len(self._addrs):
            return out
        idx = np.searchsorted(self._addrs, addrs)
        idx = np.clip(idx, 0, len(self._addrs) - 1)
        found = self._addrs[idx] == addrs
        out[found] = self._realms[idx[found]]
        return out

    def deliverable(
        self,
        sources: np.ndarray,
        targets: np.ndarray,
        target_private: np.ndarray | None = None,
    ) -> np.ndarray:
        """Mask of probes NAT semantics allow through.

        Probes to private targets survive only inside a shared realm;
        probes to public targets always pass this layer (the NAT
        translates outbound traffic).  ``target_private`` lets the
        environment reuse its per-batch address classification instead
        of re-deriving the mask here.
        """
        sources = np.asarray(sources, dtype=np.uint32)
        targets = np.asarray(targets, dtype=np.uint32)
        if target_private is None:
            target_private = is_private(targets)
        ok = np.ones(targets.shape, dtype=bool)
        if target_private.any():
            if self.intra_private_model == "statistical":
                ok[target_private] = is_private(sources[target_private])
            else:
                src_realm = self.realm_of(sources[target_private])
                dst_realm = self.realm_of(targets[target_private])
                same_realm = (src_realm == dst_realm) & (src_realm != NO_REALM)
                ok[target_private] = same_realm
        return ok
