"""Environmental factors — the network between source and target.

The paper's second hotspot class is everything the worm code does not
control: NATs and private address space, routing and filtering policy,
failures and misconfiguration, and topology.  This package models each
as a composable predicate over batches of ``(source, target)`` probes;
:class:`~repro.env.environment.NetworkEnvironment` stacks them into a
single ``deliverable`` decision the simulator consults every tick.
"""

from repro.env.environment import NetworkEnvironment, ProbeVerdict
from repro.env.failures import LossModel, RegionLoss
from repro.env.filtering import FilterAction, FilterRule, FilteringPolicy
from repro.env.nat import NATDeployment
from repro.env.topology import LatencyModel, RegionLink, Topology

__all__ = [
    "FilterAction",
    "FilterRule",
    "FilteringPolicy",
    "LatencyModel",
    "LossModel",
    "NATDeployment",
    "NetworkEnvironment",
    "ProbeVerdict",
    "RegionLink",
    "RegionLoss",
    "Topology",
]
