"""The composed network environment.

:class:`NetworkEnvironment` stacks the environmental factors in the
order real packets meet them:

1. basic routability (loopback/multicast/class-E targets go nowhere);
2. NAT / private-address reachability;
3. routing and filtering policy;
4. failures and misconfiguration (probabilistic loss).

`deliverable` answers, per probe, whether the infection packet reaches
its target; `verdicts` additionally reports *why* probes died, which
the analysis layer uses to attribute hotspots to specific factors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.env.failures import LossModel
from repro.env.filtering import FilteringPolicy
from repro.env.nat import NATDeployment
from repro.net.special import ADDR_PRIVATE, ADDR_UNROUTABLE, classify


@dataclass
class ProbeVerdict:
    """Per-batch breakdown of probe outcomes (counts)."""

    total: int
    delivered: int
    unroutable: int
    nat_blocked: int
    filtered: int
    lost: int


class NetworkEnvironment:
    """Composable end-to-end reachability for worm probes."""

    def __init__(
        self,
        nat: Optional[NATDeployment] = None,
        policy: Optional[FilteringPolicy] = None,
        loss: Optional[LossModel] = None,
    ):
        self.nat = nat if nat is not None else NATDeployment.empty()
        self.policy = policy if policy is not None else FilteringPolicy()
        self.loss = loss if loss is not None else LossModel()

    def deterministic_deliverable(
        self,
        sources: np.ndarray,
        targets: np.ndarray,
        worm: Optional[str] = None,
        *,
        target_class: Optional[np.ndarray] = None,
        policy_ok: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """The RNG-free layers: routability ∧ NAT ∧ policy.

        This is :meth:`deliverable` minus the loss draw — a pure
        function of the batch, so the sharded engine can resolve it
        per shard while the driver keeps every RNG draw global.  The
        layer composition and buffer reuse are exactly the prefix of
        :meth:`deliverable`'s, so ANDing a loss mask afterwards is
        bit-identical to the one-shot composition.
        """
        sources = np.asarray(sources, dtype=np.uint32)
        targets = np.asarray(targets, dtype=np.uint32)
        if target_class is None:
            # One compiled-LPM pass classifies every target; the
            # routable check and the NAT layer both read from it.
            target_class = classify(targets)
        ok = target_class != ADDR_UNROUTABLE
        np.logical_and(
            ok,
            self.nat.deliverable(
                sources, targets, target_private=target_class == ADDR_PRIVATE
            ),
            out=ok,
        )
        if policy_ok is None:
            policy_ok = self.policy.deliverable(sources, targets, worm)
        np.logical_and(ok, policy_ok, out=ok)
        return ok

    def deliverable(
        self,
        sources: np.ndarray,
        targets: np.ndarray,
        rng: np.random.Generator,
        worm: Optional[str] = None,
        *,
        target_class: Optional[np.ndarray] = None,
        policy_ok: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Mask of probes that reach their targets.

        ``target_class`` and ``policy_ok`` let the fused tick path
        hand in answers it already resolved through one merged-
        partition locate; they must equal what :func:`classify` and
        ``policy.deliverable`` would compute (the equivalence suite
        enforces this).  Layer composition, and in particular the
        loss model's RNG consumption, is identical either way.
        """
        ok = self.deterministic_deliverable(
            sources,
            targets,
            worm,
            target_class=target_class,
            policy_ok=policy_ok,
        )
        np.logical_and(ok, self.loss.deliverable(targets, rng), out=ok)
        return ok

    def verdicts(
        self,
        sources: np.ndarray,
        targets: np.ndarray,
        rng: np.random.Generator,
        worm: Optional[str] = None,
    ) -> tuple[np.ndarray, ProbeVerdict]:
        """Deliverability mask plus an attribution of every drop."""
        sources = np.asarray(sources, dtype=np.uint32)
        targets = np.asarray(targets, dtype=np.uint32)
        target_class = classify(targets)
        routable = target_class != ADDR_UNROUTABLE
        nat_ok = self.nat.deliverable(
            sources, targets, target_private=target_class == ADDR_PRIVATE
        )
        policy_ok = self.policy.deliverable(sources, targets, worm)
        loss_ok = self.loss.deliverable(targets, rng)

        ok = routable & nat_ok & policy_ok & loss_ok
        # Attribute each failed probe to the *first* layer that
        # dropped it, mirroring the packet's actual fate.
        unroutable = ~routable
        nat_blocked = routable & ~nat_ok
        filtered = routable & nat_ok & ~policy_ok
        lost = routable & nat_ok & policy_ok & ~loss_ok
        verdict = ProbeVerdict(
            total=int(targets.size),
            delivered=int(ok.sum()),
            unroutable=int(unroutable.sum()),
            nat_blocked=int(nat_blocked.sum()),
            filtered=int(filtered.sum()),
            lost=int(lost.sum()),
        )
        return ok, verdict
