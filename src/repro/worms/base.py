"""Worm model interface.

A :class:`WormModel` separates the *algorithm* (shared constants,
probabilities, PRNG parameters) from the *state* of the currently
infected hosts.  The simulator drives it in batches:

1. ``new_state()`` creates an empty population state;
2. ``add_hosts(state, addrs)`` infects a batch of hosts (seeding their
   per-host PRNGs / counters);
3. ``generate(state, scans)`` returns the next ``scans`` targets for
   every infected host as a ``(num_hosts, scans)`` ``uint32`` array.

Rows of the target matrix correspond to :meth:`WormState.addresses`
order, so the environment layer can pair each probe with its source.
"""

from __future__ import annotations

import abc
from typing import Optional

import numpy as np


class WormState:
    """Base per-population scanning state: the infected hosts' addresses.

    Subclasses append parallel arrays (PRNG states, scan counters) and
    must keep them aligned with :attr:`_addresses`.
    """

    def __init__(self) -> None:
        self._addresses = np.empty(0, dtype=np.uint32)

    @property
    def num_hosts(self) -> int:
        """Number of infected hosts currently scanning."""
        return len(self._addresses)

    def addresses(self) -> np.ndarray:
        """Source addresses of the infected hosts (row order of targets)."""
        return self._addresses

    def _append_addresses(self, addrs: np.ndarray) -> None:
        self._addresses = np.concatenate(
            [self._addresses, np.asarray(addrs, dtype=np.uint32)]
        )


class WormModel(abc.ABC):
    """Abstract worm: creates states, infects hosts, generates targets."""

    #: Human-readable name used in reports and benchmarks.
    name: str = "worm"

    @abc.abstractmethod
    def new_state(self) -> WormState:
        """An empty population state for this worm."""

    @abc.abstractmethod
    def add_hosts(
        self, state: WormState, addrs: np.ndarray, rng: np.random.Generator
    ) -> None:
        """Infect ``addrs``; initialize their per-host scanning state."""

    @abc.abstractmethod
    def generate(
        self, state: WormState, scans: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Next ``scans`` targets per host, shape ``(num_hosts, scans)``."""

    def single_host_targets(
        self,
        source: int,
        scans: int,
        rng: Optional[np.random.Generator] = None,
    ) -> np.ndarray:
        """Convenience: the scan stream of one infected host.

        This is the "quarantine harness" the paper builds with a
        honeypot: one infected host, its target stream observed
        directly (Figure 4b/c).  When no generator is supplied the
        stream is seeded deterministically (seed 0) — the determinism
        policy (RP002) forbids ambient OS entropy in model code.
        """
        rng = rng if rng is not None else np.random.default_rng(0)
        state = self.new_state()
        self.add_hosts(state, np.array([source], dtype=np.uint32), rng)
        return self.generate(state, scans, rng)[0]


def uniform_random_addresses(
    count: int, rng: np.random.Generator
) -> np.ndarray:
    """``count`` uniform random addresses over the whole IPv4 space."""
    return rng.integers(0, 2**32, size=count, dtype=np.uint64).astype(np.uint32)
