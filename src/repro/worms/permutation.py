"""Permutation scanning (Staniford et al. taxonomy extension).

All instances share one full-period permutation of the address space
(a Hull–Dobell LCG); each newly infected host starts at a random point
and walks the permutation.  In the full design a host re-randomizes
when it hits an already-infected target; this implementation models
the open-loop walk, which preserves the coverage property the hotspot
metrics care about: the *population* covers address space without the
duplicate-probe waste of independent uniform scanning, while each
*individual* host scans a deterministic pseudo-random sequence.
"""

from __future__ import annotations

import numpy as np

from repro.worms.base import WormModel, WormState

#: Hull–Dobell full-period parameters (Numerical Recipes LCG):
#: b odd and a ≡ 1 (mod 4) give period 2^32 over the full space.
PERMUTATION_A = 1664525
PERMUTATION_B = 1013904223


class PermutationState(WormState):
    """Per-host position in the shared permutation."""

    def __init__(self) -> None:
        super().__init__()
        self.positions = np.empty(0, dtype=np.uint64)


class PermutationScanWorm(WormModel):
    """Walks a shared full-period LCG permutation from random offsets."""

    name = "permutation"

    def __init__(self, a: int = PERMUTATION_A, b: int = PERMUTATION_B):
        if a % 4 != 1 or b % 2 != 1:
            raise ValueError(
                "full period requires a ≡ 1 (mod 4) and odd b (Hull–Dobell)"
            )
        self.a = a
        self.b = b

    def new_state(self) -> PermutationState:
        return PermutationState()

    def add_hosts(
        self, state: PermutationState, addrs: np.ndarray, rng: np.random.Generator
    ) -> None:
        addrs = np.asarray(addrs, dtype=np.uint32)
        state._append_addresses(addrs)
        starts = rng.integers(0, 2**32, size=len(addrs), dtype=np.uint64)
        state.positions = np.concatenate([state.positions, starts])

    def generate(
        self, state: PermutationState, scans: int, rng: np.random.Generator
    ) -> np.ndarray:
        targets = np.empty((state.num_hosts, scans), dtype=np.uint32)
        positions = state.positions
        a = np.uint64(self.a)
        b = np.uint64(self.b)
        mask = np.uint64(0xFFFFFFFF)
        for scan in range(scans):
            positions = (positions * a + b) & mask
            targets[:, scan] = positions.astype(np.uint32)
        state.positions = positions
        return targets
