"""Flash worms (Staniford et al., "The top speed of flash worms").

The paper cites flash worms as the extreme of the hit-list idea: the
attacker pre-computes the *complete* list of vulnerable hosts and
embeds a spread tree in the payload — every probe hits a vulnerable
host, so propagation is limited only by latency and fan-out, not by
scanning.

:class:`FlashWorm` models the tree directly: on infection, a host
receives a slice of the global list and forwards equal sub-slices to
its first ``fanout`` children.  :func:`flash_infection_times` gives
the closed-form depth-based infection schedule the simulator's
time-stepped loop cannot resolve (whole populations fall in seconds).
"""

from __future__ import annotations

import math

import numpy as np

from repro.worms.base import WormModel, WormState


class FlashState(WormState):
    """Per-host work lists (the assigned slice, minus forwarded parts)."""

    def __init__(self) -> None:
        super().__init__()
        self.pending: list[np.ndarray] = []


class FlashWorm(WormModel):
    """Spread-tree worm over a precomputed vulnerable-host list.

    Parameters
    ----------
    target_list:
        The complete vulnerable population, in attack order.
    fanout:
        Children per infected host.
    """

    name = "flash"

    def __init__(self, target_list: np.ndarray, fanout: int = 10):
        target_list = np.asarray(target_list, dtype=np.uint32)
        if not len(target_list):
            raise ValueError("flash worms need a target list")
        if fanout < 1:
            raise ValueError("fanout must be at least 1")
        self.target_list = target_list
        self.fanout = fanout
        self._assignments: dict[int, np.ndarray] = {}

    def new_state(self) -> FlashState:
        return FlashState()

    def add_hosts(
        self, state: FlashState, addrs: np.ndarray, rng: np.random.Generator
    ) -> None:
        addrs = np.asarray(addrs, dtype=np.uint32)
        first_seed = state.num_hosts == 0
        state._append_addresses(addrs)
        for addr in addrs:
            assignment = self._assignments.pop(int(addr), None)
            if assignment is None and first_seed:
                # The first host ever seeded owns the whole list.
                assignment = self.target_list
                first_seed = False
            state.pending.append(
                assignment if assignment is not None else np.empty(0, np.uint32)
            )

    def generate(
        self, state: FlashState, scans: int, rng: np.random.Generator
    ) -> np.ndarray:
        targets = np.zeros((state.num_hosts, scans), dtype=np.uint32)
        for row, work in enumerate(state.pending):
            if not len(work):
                continue
            # A host's slice may contain its own address (the seed
            # owns the full list); drop it or its sub-slice strands.
            work = work[work != state.addresses()[row]]
            if not len(work):
                state.pending[row] = np.empty(0, np.uint32)
                continue
            # Probe the first `scans` children; each takes an equal
            # slice of the remainder to hand onward.
            children = work[: self.fanout][:scans]
            targets[row, : len(children)] = children
            remainder = work[len(children) :]
            slices = np.array_split(remainder, max(len(children), 1))
            for child, child_slice in zip(children, slices):
                self._assignments[int(child)] = child_slice
            state.pending[row] = np.empty(0, np.uint32)
        return targets


def flash_infection_times(
    population: int, fanout: int, hop_latency: float
) -> np.ndarray:
    """Closed-form infection times under an ideal spread tree.

    Generation ``g`` completes ``hop_latency * g`` seconds after
    release; generation sizes follow ``fanout**g``.  Returns one
    timestamp per infected host (sorted).
    """
    if population < 1 or fanout < 1 or hop_latency <= 0:
        raise ValueError("population, fanout and hop_latency must be positive")
    times = []
    infected = 1
    generation = 0
    times.extend([0.0])
    while infected < population:
        generation += 1
        new = min(infected * fanout, population - infected)
        times.extend([generation * hop_latency] * new)
        infected += new
    return np.array(times)


def flash_time_to_full_infection(
    population: int, fanout: int, hop_latency: float
) -> float:
    """Seconds to total infection: ``ceil(log_fanout(N)) * latency``."""
    if population <= 1:
        return 0.0
    return math.ceil(math.log(population, fanout)) * hop_latency
