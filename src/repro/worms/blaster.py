"""Blaster (MSBlast / Lovsan) target generation.

Blaster seeds Microsoft's CRT ``rand()`` with ``GetTickCount()`` at
startup.  Because the worm launches from a registry run key right
after boot, the seed is confined to the narrow boot-time window the
paper measures (~30 s ± 1 s per hardware generation).  Target
selection, per the decompiled source:

* with probability 0.4 the start address is derived from the host's
  own address — keep octets A.B, take the host's C and, if C > 20,
  subtract ``rand() % 20``; the D octet starts at 0;
* with probability 0.6 the start address is random —
  ``A = rand() % 254 + 1``, ``B = rand() % 254``,
  ``C = rand() % 254``, ``D = 0``.

From the start address the worm scans **sequentially upward** one
address at a time.  A biased seed therefore biases the whole sweep,
producing the Figure 1 hotspots the paper maps back to boot times.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.prng.entropy import BootTimeModel
from repro.prng.msrand import MS_RAND_A, MS_RAND_B, RAND_MAX
from repro.worms.base import WormModel, WormState

P_LOCAL_START = 0.4

_MASK32 = np.uint64(0xFFFFFFFF)


def _rand_step(states: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """One vectorized CRT ``rand()`` step: (new_states, outputs)."""
    states = (states * np.uint64(MS_RAND_A) + np.uint64(MS_RAND_B)) & _MASK32
    outputs = (states >> np.uint64(16)) & np.uint64(RAND_MAX)
    return states, outputs


def blaster_starts_for_seeds(
    seeds: np.ndarray, sources: Optional[np.ndarray] = None
) -> tuple[np.ndarray, np.ndarray]:
    """Map ``GetTickCount()`` seeds to Blaster start addresses.

    Returns ``(starts, is_local)``.  The local/random decision and the
    random octets all come from the seeded ``rand()`` stream, so this
    is the deterministic seed-to-target mapping the paper builds from
    the decompiled source.  When ``sources`` is ``None``, local-start
    hosts get a start derived from source address 0 (callers doing
    seed forensics typically filter those rows out via ``is_local``).
    """
    states = np.asarray(seeds, dtype=np.uint64) & _MASK32
    count = len(states)
    if sources is None:
        sources = np.zeros(count, dtype=np.uint32)
    sources = np.asarray(sources, dtype=np.uint32)

    states, decision = _rand_step(states)
    is_local = (decision % np.uint64(10)) < np.uint64(int(P_LOCAL_START * 10))

    states, rand_a = _rand_step(states)
    states, rand_b = _rand_step(states)
    states, rand_c = _rand_step(states)
    octet_a = (rand_a % np.uint64(254) + np.uint64(1)).astype(np.uint32)
    octet_b = (rand_b % np.uint64(254)).astype(np.uint32)
    octet_c_random = (rand_c % np.uint64(254)).astype(np.uint32)
    random_starts = (octet_a << np.uint32(24)) | (octet_b << np.uint32(16)) | (
        octet_c_random << np.uint32(8)
    )

    states, rand_sub = _rand_step(states)
    own_c = (sources >> np.uint32(8)) & np.uint32(0xFF)
    local_c = np.where(
        own_c > 20, own_c - (rand_sub % np.uint64(20)).astype(np.uint32), own_c
    )
    local_starts = (sources & np.uint32(0xFFFF0000)) | (local_c << np.uint32(8))

    starts = np.where(is_local, local_starts, random_starts).astype(np.uint32)
    return starts, np.asarray(is_local, dtype=bool)


def blaster_start_for_seed(seed: int, source: int = 0) -> tuple[int, bool]:
    """Scalar convenience wrapper around :func:`blaster_starts_for_seeds`."""
    starts, is_local = blaster_starts_for_seeds(
        np.array([seed], dtype=np.uint64), np.array([source], dtype=np.uint32)
    )
    return int(starts[0]), bool(is_local[0])


class BlasterState(WormState):
    """Per-host sequential scan cursor."""

    def __init__(self) -> None:
        super().__init__()
        self.cursors = np.empty(0, dtype=np.uint64)
        self.seeds = np.empty(0, dtype=np.uint32)
        self.started_local = np.empty(0, dtype=bool)


class BlasterWorm(WormModel):
    """Sequential scanner with a boot-time-seeded start address.

    Parameters
    ----------
    boot_model:
        Source of ``GetTickCount()`` seeds for newly infected hosts.
        Defaults to the paper's reboot measurement model.  The worm
        relaunching at boot is exactly what confines the seed space.
    """

    name = "blaster"

    def __init__(self, boot_model: Optional[BootTimeModel] = None):
        self.boot_model = boot_model if boot_model is not None else BootTimeModel()

    def new_state(self) -> BlasterState:
        return BlasterState()

    def add_hosts(
        self, state: BlasterState, addrs: np.ndarray, rng: np.random.Generator
    ) -> None:
        addrs = np.asarray(addrs, dtype=np.uint32)
        state._append_addresses(addrs)
        seeds = self.boot_model.sample_seeds(len(addrs), rng)
        starts, is_local = blaster_starts_for_seeds(seeds, addrs)
        state.cursors = np.concatenate([state.cursors, starts.astype(np.uint64)])
        state.seeds = np.concatenate([state.seeds, seeds])
        state.started_local = np.concatenate([state.started_local, is_local])

    def generate(
        self, state: BlasterState, scans: int, rng: np.random.Generator
    ) -> np.ndarray:
        offsets = np.arange(scans, dtype=np.uint64)
        targets = (state.cursors[:, None] + offsets[None, :]) & _MASK32
        state.cursors = (state.cursors + np.uint64(scans)) & _MASK32
        return targets.astype(np.uint32)
