"""Slammer (SQL Sapphire) target generation.

Slammer draws each target directly from the LCG state
``s(i+1) = 214013 * s(i) + b (mod 2^32)`` and fires one UDP packet at
the address ``s(i+1)``.  The author apparently intended
``b = 0xffd9613c`` but cleared the wrong register with ``OR`` instead
of ``XOR``, so the increment actually used is ``0xffd9613c`` combined
with whatever the ``sqlsort.dll`` Import Address Table entry left in
``ebx``.  Three IAT values are widely reported, giving three possible
``b`` values per infected host (depending on its DLL version).

Because the resulting map is a permutation with 64 cycles of wildly
different lengths (see :mod:`repro.prng.cycles`), each infected host
is locked into the cycle its seed lands on — the root cause of the
paper's Figure 2 and 3 hotspots.

**Byte order matters.**  The worm stores its 32-bit state straight
into the ``sockaddr_in`` on a little-endian x86, so the state's least
significant byte becomes the *first* octet of the destination
address.  A destination /24 therefore pins the state's low 24 bits,
which pins ``v2(state - fixedpoint)`` — i.e. the *cycle length* — for
(almost) every address in the /24.  This is exactly why whole sensor
blocks observe systematically more or fewer unique Slammer sources:
their high octets select long or short cycles.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.worms.base import WormModel, WormState

SLAMMER_A = 214013

#: The increment the worm author appears to have intended.
SLAMMER_INTENDED_B = 0xFFD9613C

#: Reported ``sqlsort.dll`` IAT entries left in ``ebx`` (per DLL version).
SQLSORT_IAT_VALUES = (0x77F8313C, 0x77E89B18, 0x77EA094C)

#: Effective ``b`` values after the OR-for-XOR bug, one per DLL version.
#: The paper derives them by combining the IAT leftovers with the
#: intended constant; 0x8831fa24 is the value it reports explicitly.
SLAMMER_B_VALUES = tuple(
    (SLAMMER_INTENDED_B ^ iat) & 0xFFFFFFFF for iat in SQLSORT_IAT_VALUES
)


def state_to_address(states: np.ndarray) -> np.ndarray:
    """Map LCG states to destination addresses (little-endian store).

    The state's least significant byte becomes the first address
    octet, mirroring the worm writing its x86 register straight into
    the network-byte-order ``sockaddr``.
    """
    return np.asarray(states, dtype=np.uint32).byteswap()


def address_to_state(addrs: np.ndarray) -> np.ndarray:
    """Inverse of :func:`state_to_address` (byteswap is an involution)."""
    return np.asarray(addrs, dtype=np.uint32).byteswap()


class SlammerState(WormState):
    """Per-host LCG state and per-host increment (DLL version)."""

    def __init__(self) -> None:
        super().__init__()
        self.lcg_states = np.empty(0, dtype=np.uint64)
        self.b_values = np.empty(0, dtype=np.uint64)


class SlammerWorm(WormModel):
    """The broken Slammer LCG scanner.

    Parameters
    ----------
    b_values:
        Candidate increments; each newly infected host picks one
        uniformly (modelling its installed ``sqlsort.dll`` version).
        Defaults to the three OR-bug values.  Pass a single-element
        sequence to study one DLL population in isolation.
    seed_mode:
        ``"random"`` (default) seeds each host's LCG uniformly — the
        worm seeds from a millisecond timer whose value at infection
        time is effectively uniform.  ``"address"`` seeds with the
        host's own address (useful in tests for determinism).
    """

    name = "slammer"

    def __init__(
        self,
        b_values: Sequence[int] = SLAMMER_B_VALUES,
        seed_mode: str = "random",
    ):
        if not b_values:
            raise ValueError("at least one b value is required")
        if seed_mode not in ("random", "address"):
            raise ValueError(f"unknown seed_mode: {seed_mode!r}")
        self.b_candidates = np.array(
            [b & 0xFFFFFFFF for b in b_values], dtype=np.uint64
        )
        self.seed_mode = seed_mode

    def new_state(self) -> SlammerState:
        return SlammerState()

    def add_hosts(
        self, state: SlammerState, addrs: np.ndarray, rng: np.random.Generator
    ) -> None:
        addrs = np.asarray(addrs, dtype=np.uint32)
        state._append_addresses(addrs)
        if self.seed_mode == "address":
            seeds = addrs.astype(np.uint64)
        else:
            seeds = rng.integers(0, 2**32, size=len(addrs), dtype=np.uint64)
        picks = rng.integers(0, len(self.b_candidates), size=len(addrs))
        state.lcg_states = np.concatenate([state.lcg_states, seeds])
        state.b_values = np.concatenate(
            [state.b_values, self.b_candidates[picks]]
        )

    def generate(
        self, state: SlammerState, scans: int, rng: np.random.Generator
    ) -> np.ndarray:
        targets = np.empty((state.num_hosts, scans), dtype=np.uint32)
        lcg = state.lcg_states
        b = state.b_values
        a = np.uint64(SLAMMER_A)
        mask = np.uint64(0xFFFFFFFF)
        for scan in range(scans):
            lcg = (lcg * a + b) & mask
            targets[:, scan] = state_to_address(lcg.astype(np.uint32))
        state.lcg_states = lcg
        return targets
