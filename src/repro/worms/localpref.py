"""Generic octet-mask local preference.

Many worms bias targeting toward nearby address space by reusing the
high octets of their own address.  This model draws, per probe, one of
three behaviours: keep the source's /8, keep the source's /16, or pick
a fully random address.  CodeRedII is the canonical instance (see
:mod:`repro.worms.codered2`); other mixes let the benchmarks ablate
how the strength of local preference shapes hotspots.
"""

from __future__ import annotations

import numpy as np

from repro.worms.base import WormModel, WormState, uniform_random_addresses

MASK_8 = np.uint32(0xFF000000)
MASK_16 = np.uint32(0xFFFF0000)


class LocalPreferenceWorm(WormModel):
    """Targets same-/8 or same-/16 space with configurable probabilities.

    Parameters
    ----------
    p_same_8:
        Probability a probe keeps the source's first octet (and
        randomizes the rest).
    p_same_16:
        Probability a probe keeps the source's first two octets.
    name:
        Report label; defaults to a descriptive string.

    The remaining probability mass picks a uniformly random target.
    """

    def __init__(self, p_same_8: float, p_same_16: float, name: str = ""):
        if p_same_8 < 0 or p_same_16 < 0 or p_same_8 + p_same_16 > 1:
            raise ValueError("probabilities must be non-negative and sum to <= 1")
        self.p_same_8 = p_same_8
        self.p_same_16 = p_same_16
        self.name = name or f"localpref(p8={p_same_8}, p16={p_same_16})"

    def new_state(self) -> WormState:
        return WormState()

    def add_hosts(
        self, state: WormState, addrs: np.ndarray, rng: np.random.Generator
    ) -> None:
        state._append_addresses(addrs)

    def generate(
        self, state: WormState, scans: int, rng: np.random.Generator
    ) -> np.ndarray:
        num_hosts = state.num_hosts
        shape = (num_hosts, scans)
        random_targets = uniform_random_addresses(num_hosts * scans, rng).reshape(shape)
        sources = np.broadcast_to(state.addresses()[:, None], shape)

        choice = rng.random(shape)
        targets = random_targets.copy()

        same_16 = choice < self.p_same_16
        same_8 = (~same_16) & (choice < self.p_same_16 + self.p_same_8)

        targets[same_16] = (sources[same_16] & MASK_16) | (
            random_targets[same_16] & ~MASK_16
        )
        targets[same_8] = (sources[same_8] & MASK_8) | (
            random_targets[same_8] & ~MASK_8
        )
        return targets
