"""CodeRedII target generation.

From the disassembly (as reconstructed in the paper's simulation
platform): each probe keeps the source's /8 with probability 1/2,
keeps the source's /16 with probability 3/8, and is fully random with
probability 1/8 — "a completely random target address is chosen only
12.5% of the time".  Probes to 127/8, multicast/class-E space, or the
source's own address are discarded and redrawn.

The NAT hotspot (Figure 4) follows directly: a host NATed at
``192.168.x.y`` prefers 192/8 half the time, and since ``192.168/16``
is the only private /16 inside ``192/8``, most of those locally
preferred probes leak onto the public Internet and concentrate on
192/8 — where the paper's M sensor block sits.
"""

from __future__ import annotations

import numpy as np

from repro.worms.base import WormModel, WormState, uniform_random_addresses
from repro.worms.localpref import MASK_8, MASK_16

P_SAME_8 = 0.5
P_SAME_16 = 0.375
P_RANDOM = 0.125

_LOOPBACK_PREFIX = np.uint32(127)
_MULTICAST_FLOOR = np.uint32(224)

# Redraw passes for excluded targets.  Each pass redraws only the
# still-invalid probes; the invalid probability per draw is < 15%, so
# the residual after 8 passes is negligible (< 1e-7).
_REDRAW_PASSES = 8


class CodeRedIIWorm(WormModel):
    """CodeRedII's masked target generator (1/2 /8, 3/8 /16, 1/8 random)."""

    name = "codered2"

    def new_state(self) -> WormState:
        return WormState()

    def add_hosts(
        self, state: WormState, addrs: np.ndarray, rng: np.random.Generator
    ) -> None:
        state._append_addresses(addrs)

    def generate(
        self, state: WormState, scans: int, rng: np.random.Generator
    ) -> np.ndarray:
        shape = (state.num_hosts, scans)
        sources = np.broadcast_to(state.addresses()[:, None], shape)
        targets = self._draw(sources, shape, rng)
        invalid = self._excluded(targets, sources)
        for _ in range(_REDRAW_PASSES):
            if not invalid.any():
                break
            redrawn = self._draw(sources, shape, rng)
            targets[invalid] = redrawn[invalid]
            invalid = self._excluded(targets, sources)
        if invalid.any():
            # A source inside an excluded /8 (e.g. a test host at
            # 127.x) can make its local-preference branches invalid
            # forever; fall back to valid uniform draws so generation
            # always terminates with conforming targets.
            targets[invalid] = self._valid_uniform(int(invalid.sum()), rng)
        return targets

    @staticmethod
    def _valid_uniform(count: int, rng: np.random.Generator) -> np.ndarray:
        """Uniform draws over addresses with a non-excluded first octet."""
        valid_octets = np.array(
            [o for o in range(224) if o != 127], dtype=np.uint32
        )
        first = rng.choice(valid_octets, size=count)
        rest = rng.integers(0, 2**24, size=count, dtype=np.uint64).astype(np.uint32)
        return (first << np.uint32(24)) | rest

    def _draw(
        self, sources: np.ndarray, shape: tuple[int, int], rng: np.random.Generator
    ) -> np.ndarray:
        random_targets = uniform_random_addresses(
            shape[0] * shape[1], rng
        ).reshape(shape)
        choice = rng.random(shape)
        targets = random_targets.copy()
        same_16 = choice < P_SAME_16
        same_8 = (~same_16) & (choice < P_SAME_16 + P_SAME_8)
        targets[same_16] = (sources[same_16] & MASK_16) | (
            random_targets[same_16] & ~MASK_16
        )
        targets[same_8] = (sources[same_8] & MASK_8) | (
            random_targets[same_8] & ~MASK_8
        )
        return targets

    @staticmethod
    def _excluded(targets: np.ndarray, sources: np.ndarray) -> np.ndarray:
        first_octet = targets >> np.uint32(24)
        return (
            (first_octet == _LOOPBACK_PREFIX)
            | (first_octet >= _MULTICAST_FLOOR)
            | (targets == sources)
        )
