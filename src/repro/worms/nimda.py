"""Nimda-style local preference.

The paper: "CodeRedII and Nimba have been shown to scan nearby
addresses with a higher probability".  Nimda's documented mix is
50% same-/16, 25% same-/8, 25% random — stronger /16 preference than
CodeRedII (which favours the /8).  Provided both as a faithful second
data point and as an ablation partner: the two worms bracket how the
*shape* of local preference (tight /16 vs broad /8) shifts where
hotspots form.
"""

from __future__ import annotations

from repro.worms.localpref import LocalPreferenceWorm

P_SAME_16 = 0.5
P_SAME_8 = 0.25
P_RANDOM = 0.25


class NimdaWorm(LocalPreferenceWorm):
    """Nimda's 50/25/25 local-preference mix."""

    def __init__(self) -> None:
        super().__init__(p_same_8=P_SAME_8, p_same_16=P_SAME_16, name="nimda")
