"""Uniform random scanning — the baseline of the simple epidemic model.

Every IPv4 address is an equally likely next target.  This is the
propagation process earlier detection work assumed and the reference
against which the paper defines hotspots.
"""

from __future__ import annotations

import numpy as np

from repro.worms.base import WormModel, WormState


class UniformScanWorm(WormModel):
    """Chooses every target uniformly at random from the 2^32 space."""

    name = "uniform"

    def new_state(self) -> WormState:
        return WormState()

    def add_hosts(
        self, state: WormState, addrs: np.ndarray, rng: np.random.Generator
    ) -> None:
        state._append_addresses(addrs)

    def generate(
        self, state: WormState, scans: int, rng: np.random.Generator
    ) -> np.ndarray:
        return rng.integers(
            0, 2**32, size=(state.num_hosts, scans), dtype=np.uint64
        ).astype(np.uint32)
