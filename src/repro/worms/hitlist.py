"""Hit-list worms.

A hit-list restricts propagation to a pre-programmed set of prefixes —
the behaviour the paper captures live in bot commands (Table 1) and
simulates in Figure 5(a/b).  Each probe targets a uniformly random
address *within the hit-list space*; addresses outside the list are
never probed, which is what starves sensors placed elsewhere.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.net.cidr import BlockSet, CIDRBlock
from repro.worms.base import WormModel, WormState
from repro.worms.codered2 import CodeRedIIWorm


class HitListWorm(WormModel):
    """Scans uniformly within a fixed prefix list."""

    name = "hitlist"

    def __init__(self, hitlist: BlockSet | Iterable[CIDRBlock]):
        blocks = hitlist if isinstance(hitlist, BlockSet) else BlockSet(hitlist)
        if not len(blocks):
            raise ValueError("hit-list must contain at least one prefix")
        self.hitlist = blocks
        self.name = f"hitlist({len(blocks)} prefixes)"

    def new_state(self) -> WormState:
        return WormState()

    def add_hosts(
        self, state: WormState, addrs: np.ndarray, rng: np.random.Generator
    ) -> None:
        state._append_addresses(addrs)

    def generate(
        self, state: WormState, scans: int, rng: np.random.Generator
    ) -> np.ndarray:
        targets = self.hitlist.random_addresses(state.num_hosts * scans, rng)
        return targets.reshape(state.num_hosts, scans)


class HitListCodeRedIIWorm(CodeRedIIWorm):
    """CodeRedII's propagation algorithm confined to a hit-list.

    The paper's Figure 5(a/b) threat: "a worm that uses a list of
    prefixes that specify /16 IPv4 networks as targets", built on the
    simulation platform's CodeRedII internals.  Targets are drawn
    with CRII's mask preference (1/2 same /8, 3/8 same /16, 1/8
    random); any draw landing outside the hit-list is replaced by a
    uniform draw *within* it, so "each newly infected host may only
    propagate to the addresses covered by the prefixes in the
    hit-list" holds exactly.
    """

    def __init__(self, hitlist: BlockSet | Iterable[CIDRBlock]):
        blocks = hitlist if isinstance(hitlist, BlockSet) else BlockSet(hitlist)
        if not len(blocks):
            raise ValueError("hit-list must contain at least one prefix")
        self.hitlist = blocks
        self.name = f"hitlist-crii({len(blocks)} prefixes)"

    def generate(self, state, scans, rng):
        targets = super().generate(state, scans, rng)
        outside = ~self.hitlist.contains_array(targets)
        if outside.any():
            targets[outside] = self.hitlist.random_addresses(
                int(outside.sum()), rng
            )
        return targets


def build_greedy_hitlist(
    vulnerable: np.ndarray, num_prefixes: int, prefix_len: int = 16
) -> tuple[BlockSet, float]:
    """Choose prefixes covering the most vulnerable hosts.

    Mirrors the paper's hit-list construction: "Each /16 was chosen to
    cover as many remaining vulnerable hosts as possible."  Because
    same-length prefixes are disjoint, the greedy choice is simply the
    ``num_prefixes`` most-populated /``prefix_len`` blocks.

    Returns the hit-list and the fraction of ``vulnerable`` it covers.
    """
    if num_prefixes <= 0:
        raise ValueError("num_prefixes must be positive")
    vulnerable = np.asarray(vulnerable, dtype=np.uint32)
    if not len(vulnerable):
        raise ValueError("vulnerable population is empty")
    shift = np.uint32(32 - prefix_len)
    prefixes = vulnerable >> shift
    unique, counts = np.unique(prefixes, return_counts=True)
    order = np.argsort(counts)[::-1]
    chosen = unique[order[:num_prefixes]]
    covered = counts[order[:num_prefixes]].sum()
    blocks = BlockSet(
        CIDRBlock(int(prefix) << int(shift), prefix_len) for prefix in chosen
    )
    return blocks, float(covered / len(vulnerable))


def hitlist_from_prefix_specs(specs: Sequence[str]) -> BlockSet:
    """Build a hit-list from ``"a.b.c.d/len"`` strings (bot-command output)."""
    return BlockSet.parse(specs)
