"""Worm target-generation models.

Each worm is a :class:`~repro.worms.base.WormModel`: a factory for
per-host scanning state plus a vectorized batch step that produces the
next targets for every infected host at once.  The concrete models
implement the paper's case studies from their decompiled descriptions:

* :class:`~repro.worms.uniform.UniformScanWorm` — the uniform-random
  baseline of the simple epidemic model.
* :class:`~repro.worms.codered2.CodeRedIIWorm` — 1/8 random, 3/8
  same-/16, 1/2 same-/8 local preference (the NAT hotspot driver).
* :class:`~repro.worms.slammer.SlammerWorm` — the broken LCG
  ``x*214013 + b (mod 2^32)`` with the OR-bug ``b`` values.
* :class:`~repro.worms.blaster.BlasterWorm` — MS CRT ``rand()`` seeded
  from ``GetTickCount()``, 40% local start, sequential scanning.
* :class:`~repro.worms.hitlist.HitListWorm` — scans only a prefix
  list (the bot behaviour of Table 1 and Figure 5a/b).
* :class:`~repro.worms.localpref.LocalPreferenceWorm` — generic
  octet-mask local preference.
* :class:`~repro.worms.permutation.PermutationScanWorm` — Staniford
  et al. permutation scanning (taxonomy extension).
"""

from repro.worms.base import WormModel, WormState
from repro.worms.blaster import BlasterWorm, blaster_start_for_seed
from repro.worms.codered2 import CodeRedIIWorm
from repro.worms.hitlist import (
    HitListCodeRedIIWorm,
    HitListWorm,
    build_greedy_hitlist,
)
from repro.worms.flash import FlashWorm
from repro.worms.localpref import LocalPreferenceWorm
from repro.worms.nimda import NimdaWorm
from repro.worms.permutation import PermutationScanWorm
from repro.worms.slammer import SLAMMER_A, SLAMMER_B_VALUES, SlammerWorm
from repro.worms.uniform import UniformScanWorm
from repro.worms.witty import WittyWorm

__all__ = [
    "BlasterWorm",
    "CodeRedIIWorm",
    "FlashWorm",
    "HitListCodeRedIIWorm",
    "HitListWorm",
    "LocalPreferenceWorm",
    "NimdaWorm",
    "PermutationScanWorm",
    "SLAMMER_A",
    "SLAMMER_B_VALUES",
    "SlammerWorm",
    "UniformScanWorm",
    "WittyWorm",
    "WormModel",
    "WormState",
    "blaster_start_for_seed",
    "build_greedy_hitlist",
]
