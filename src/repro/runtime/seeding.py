"""Deterministic per-trial seed derivation.

The discipline: a campaign has one integer base seed; trial *i* gets
the *i*-th child of ``SeedSequence(base_seed)``.  Spawning is a pure
function of the parent entropy and the spawn index, so the same
(base seed, trial count) always yields the same generators — no
matter which process, in which order, eventually runs each trial.
That is what makes parallel and serial campaigns bitwise identical.
"""

from __future__ import annotations

from typing import Any, Union

import numpy as np

#: What experiment ``run()`` functions accept as a ``seed`` argument.
SeedLike = Union[int, np.random.SeedSequence]


def as_seed_sequence(seed: SeedLike) -> np.random.SeedSequence:
    """Wrap seed material as a ``SeedSequence`` (idempotent).

    Experiment runners accept either a plain integer (the historical
    interface) or a spawned child sequence (the trial runner's);
    wrapping here lets one code path spawn sub-streams from both.
    """
    if isinstance(seed, np.random.SeedSequence):
        return seed
    return np.random.SeedSequence(seed)


def spawn_trial_sequences(
    base_seed: int, trials: int
) -> tuple[np.random.SeedSequence, ...]:
    """The per-trial ``SeedSequence`` children for one campaign."""
    if trials < 1:
        raise ValueError("need at least one trial")
    return tuple(np.random.SeedSequence(base_seed).spawn(trials))


def seed_fingerprint(seed: Any) -> Any:
    """A JSON-compatible, stable description of a seed.

    Used in cache keys: two seeds with the same fingerprint produce
    the same generator stream.
    """
    if isinstance(seed, np.random.SeedSequence):
        entropy = seed.entropy
        if isinstance(entropy, (list, tuple)):
            entropy = [int(e) for e in entropy]
        elif entropy is not None:
            entropy = int(entropy)
        return {
            "entropy": entropy,
            "spawn_key": [int(k) for k in seed.spawn_key],
            "pool_size": int(seed.pool_size),
        }
    if isinstance(seed, (int, np.integer)):
        return int(seed)
    if seed is None:
        return None
    raise TypeError(f"cannot fingerprint seed of type {type(seed).__name__}")
