"""On-disk memoization of finished trials.

A trial is a pure function of (experiment id, parameters, seed), so
its result can be cached under a stable hash of those three.  The
cache is a directory of pickle files — one per trial — safe to delete
wholesale at any time.  Corrupt or unreadable entries count as
misses; concurrent writers go through a same-directory temp file and
an atomic rename.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pickle
import tempfile
import warnings
from pathlib import Path
from typing import Any, Iterator, Mapping, Union

import numpy as np

from repro.runtime.seeding import seed_fingerprint

#: Bump to invalidate every existing cache entry (result-format change).
CACHE_VERSION = 1

#: Overridden by ``$REPRO_CACHE_DIR``; ``ResultCache(directory=...)``
#: overrides both.
DEFAULT_CACHE_DIR = Path.home() / ".cache" / "hotspots-repro"

#: Sentinel distinguishing "miss" from a cached ``None``.
MISS = object()


def _canonical(value: Any) -> Any:
    """Reduce a parameter value to a JSON-stable form.

    Dict ordering, dataclass identity, numpy scalars/arrays, and seed
    objects all normalize; two calls that would produce the same trial
    produce the same canonical form.
    """
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        return {"__float__": value.hex()}
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return {"__float__": float(value).hex()}
    if isinstance(value, np.random.SeedSequence):
        return {"__seedseq__": seed_fingerprint(value)}
    if isinstance(value, np.ndarray):
        return {
            "__ndarray__": hashlib.sha256(np.ascontiguousarray(value).tobytes()).hexdigest(),
            "dtype": str(value.dtype),
            "shape": list(value.shape),
        }
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        cls = type(value)
        return {
            "__dataclass__": f"{cls.__module__}.{cls.__qualname__}",
            "fields": {
                field.name: _canonical(getattr(value, field.name))
                for field in dataclasses.fields(value)
            },
        }
    if isinstance(value, Mapping):
        return {
            "__mapping__": sorted(
                (str(key), _canonical(item)) for key, item in value.items()
            )
        }
    if isinstance(value, (list, tuple)):
        return {"__sequence__": [_canonical(item) for item in value]}
    if isinstance(value, (set, frozenset)):
        return {"__set__": sorted(json.dumps(_canonical(v)) for v in value)}
    # Last resort: pickle bytes are stable for plain-data objects.
    return {
        "__pickle__": hashlib.sha256(
            pickle.dumps(value, protocol=4)
        ).hexdigest()
    }


def stable_key(
    experiment_id: str, params: Mapping[str, Any], seed: Any
) -> str:
    """The cache key for one trial of one experiment."""
    payload = {
        "version": CACHE_VERSION,
        "experiment": experiment_id,
        "params": _canonical(dict(params)),
        "seed": _canonical(seed),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class ResultCache:
    """Directory-backed pickle cache for trial results."""

    def __init__(
        self, directory: Union[str, "os.PathLike[str]", None] = None
    ) -> None:
        if directory is None:
            directory = os.environ.get("REPRO_CACHE_DIR") or DEFAULT_CACHE_DIR
        self.directory = Path(directory)
        self.hits = 0
        self.misses = 0
        self.corrupt = 0
        self._warned_keys: set[str] = set()

    def path_for(self, key: str) -> Path:
        """Where one key's pickle lives."""
        return self.directory / f"{key}.pkl"

    def get(self, key: str) -> Any:
        """The cached value, or the :data:`MISS` sentinel.

        An *absent* entry is a silent miss; an entry that exists but
        cannot be read back counts as a miss too, **with a warning**
        (once per key per run) — a corrupt or version-skewed cache
        should not masquerade as a cold one.
        """
        path = self.path_for(key)
        try:
            with open(path, "rb") as handle:
                value = pickle.load(handle)
        except FileNotFoundError:
            self.misses += 1
            return MISS
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError) as error:
            self.misses += 1
            self.corrupt += 1
            if key not in self._warned_keys:
                self._warned_keys.add(key)
                warnings.warn(
                    f"cache entry {key} exists at {path} but cannot be "
                    f"read ({type(error).__name__}: {error}); treating "
                    "as a miss and re-running the trial",
                    RuntimeWarning,
                    stacklevel=2,
                )
            return MISS
        self.hits += 1
        return value

    def put(self, key: str, value: Any) -> None:
        """Store one value; atomic against concurrent readers."""
        self.directory.mkdir(parents=True, exist_ok=True)
        final = self.path_for(key)
        descriptor, temp_name = tempfile.mkstemp(
            dir=self.directory, suffix=".tmp"
        )
        try:
            with os.fdopen(descriptor, "wb") as handle:
                pickle.dump(value, handle, protocol=4)
            os.replace(temp_name, final)
        except BaseException:  # noqa: RP007 — cleanup must survive ^C
            try:
                os.unlink(temp_name)
            except OSError:  # noqa: RP007 — best-effort temp cleanup
                pass
            raise

    def __contains__(self, key: str) -> bool:
        return self.path_for(key).exists()

    def keys(self) -> Iterator[str]:
        """Keys currently on disk."""
        if not self.directory.is_dir():
            return iter(())
        return (path.stem for path in self.directory.glob("*.pkl"))

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        if self.directory.is_dir():
            for path in self.directory.glob("*.pkl"):
                try:
                    path.unlink()
                    removed += 1
                except OSError:  # noqa: RP007 — best-effort delete
                    pass
        return removed
