"""Structural equality for experiment results.

Result dataclasses nest numpy arrays, tuples of dataclasses, and
mappings; ``==`` on them is either ambiguous (arrays) or shallow.
:func:`results_equal` walks the structure and demands *bitwise*
agreement — the check behind "parallel equals serial" and "cache hit
equals fresh run".
"""

from __future__ import annotations

import dataclasses
import math
from typing import Any, Mapping

import numpy as np


def results_equal(left: Any, right: Any) -> bool:
    """True when two results agree exactly, element by element."""
    if left is right:
        return True
    if isinstance(left, np.ndarray) or isinstance(right, np.ndarray):
        if not isinstance(left, np.ndarray) or not isinstance(right, np.ndarray):
            return False
        return left.dtype == right.dtype and bool(np.array_equal(left, right))
    if dataclasses.is_dataclass(left) and not isinstance(left, type):
        if type(left) is not type(right):
            return False
        return all(
            results_equal(
                getattr(left, field.name), getattr(right, field.name)
            )
            for field in dataclasses.fields(left)
        )
    if isinstance(left, float) and isinstance(right, float):
        return left == right or (math.isnan(left) and math.isnan(right))
    if isinstance(left, Mapping) and isinstance(right, Mapping):
        return set(left) == set(right) and all(
            results_equal(left[key], right[key]) for key in left
        )
    if isinstance(left, (list, tuple)) and isinstance(right, (list, tuple)):
        return len(left) == len(right) and all(
            results_equal(a, b) for a, b in zip(left, right)
        )
    return bool(left == right)
