"""Structured accounting of one :class:`TrialRunner` batch.

Fault tolerance is only trustworthy when it is *visible*: a batch
that silently retried a hung trial or silently fell back to serial
execution looks identical to a clean run.  :class:`RunReport` makes
every recovery path explicit — one :class:`TrialOutcome` per trial
(status, attempt count, final error) plus the batch-level fallback
events (pool replacement, serial degradation, cache-write failures).

Statuses
--------
``ok``
    Succeeded on the first attempt.
``cached``
    Served from the :class:`~repro.runtime.cache.ResultCache`.
``resumed``
    Skipped because the :class:`~repro.runtime.journal.TrialJournal`
    recorded it as complete in an earlier (interrupted) run and the
    cache still held its result.
``retried``
    Succeeded, but only after one or more failed or timed-out
    attempts.  The retry re-executed the *identical* seeded trial,
    so the result is bitwise-equal to a clean first-attempt run.
``failed``
    Exhausted every attempt; the last attempt raised.
``timed-out``
    Exhausted every attempt; the last attempt exceeded the per-trial
    timeout and its worker was replaced.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Optional

#: Every status a :class:`TrialOutcome` may carry.
STATUSES = ("ok", "cached", "resumed", "retried", "failed", "timed-out")

#: Statuses that mean "this trial produced no result".
FAILURE_STATUSES = ("failed", "timed-out")


@dataclass(frozen=True)
class TrialOutcome:
    """How one trial of a batch ended.

    Attributes
    ----------
    index:
        The trial's position in the submitted batch (result order).
    label:
        The trial's human-readable tag.
    status:
        One of :data:`STATUSES`.
    attempts:
        Executions actually performed (0 for cached/resumed trials).
    timed_out_attempts:
        How many of those attempts were cut short by the per-trial
        timeout (their workers were replaced).
    error:
        The final exception for ``failed``/``timed-out`` trials.
    """

    index: int
    label: str
    status: str
    attempts: int
    timed_out_attempts: int = 0
    error: Optional[BaseException] = None

    @property
    def succeeded(self) -> bool:
        """True when the trial produced a result."""
        return self.status not in FAILURE_STATUSES

    def describe(self) -> str:
        """One log-friendly line for this outcome."""
        text = f"[{self.index}] {self.label or '<unlabeled>'}: {self.status}"
        if self.attempts != 1:
            text += f" ({self.attempts} attempts)"
        if self.error is not None:
            text += f" — {type(self.error).__name__}: {self.error}"
        return text


@dataclass(frozen=True)
class RunReport:
    """Everything that happened while executing one batch.

    ``results`` is positional (one slot per submitted trial, ``None``
    where the trial ultimately failed); ``outcomes`` explains each
    slot; ``fallback_events`` lists batch-level recoveries in the
    order they occurred.

    ``perf_stages``/``perf_ticks`` are filled only when the campaign
    ran under :func:`repro.runtime.perf.perf_collection` (the CLI's
    ``--perf``): cumulative stage seconds and tick count across every
    in-process trial.  Serial runs lap the four engine stages
    (generate/filter/dispatch/infect); sharded runs lap the driver
    stages of :data:`repro.runtime.perf.SHARD_STAGES` — pool mode's
    streamed pipeline reports ``stage``/``dispatch``/``wait``/
    ``collect`` instead of the in-process ``shards`` lap.

    ``recovery_events`` are the checkpoint/restore/supervision events
    collected by :func:`repro.runtime.checkpoint.recovery_collection`
    while the batch ran: one mapping per event with at least a
    ``kind`` key (``"checkpoint"``, ``"restore"``,
    ``"worker-respawn"``, ``"serial-rerun"``) plus kind-specific
    detail — a respawn names the failing shard, its pool slot, the
    failure reason, and how many buffered ticks were replayed.
    """

    outcomes: tuple[TrialOutcome, ...]
    results: tuple[Any, ...]
    fallback_events: tuple[str, ...] = field(default_factory=tuple)
    perf_stages: Optional[Mapping[str, float]] = None
    perf_ticks: int = 0
    recovery_events: tuple[Mapping[str, Any], ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if len(self.outcomes) != len(self.results):
            raise ValueError(
                f"{len(self.outcomes)} outcomes for "
                f"{len(self.results)} results"
            )

    # -- queries -----------------------------------------------------

    @property
    def ok(self) -> bool:
        """True when every trial produced a result."""
        return all(outcome.succeeded for outcome in self.outcomes)

    @property
    def failures(self) -> tuple[TrialOutcome, ...]:
        """Outcomes of trials that produced no result."""
        return tuple(o for o in self.outcomes if not o.succeeded)

    @property
    def total_attempts(self) -> int:
        """Executions performed across the whole batch."""
        return sum(outcome.attempts for outcome in self.outcomes)

    def counts(self) -> dict[str, int]:
        """``{status: how many trials ended that way}`` (zeros kept)."""
        tally = {status: 0 for status in STATUSES}
        for outcome in self.outcomes:
            tally[outcome.status] += 1
        return tally

    @property
    def recoveries(self) -> tuple[Mapping[str, Any], ...]:
        """Recovery events beyond routine checkpoint writes.

        Checkpoint captures are scheduled work, not recoveries; a
        restore, worker respawn, or serial re-run means the batch
        actually exercised a recovery path.
        """
        return tuple(
            event
            for event in self.recovery_events
            if event.get("kind") != "checkpoint"
        )

    @property
    def uneventful(self) -> bool:
        """True when nothing beyond plain ok/cached execution happened.

        Routine checkpoint writes don't count as events — they happen
        on every checkpointed run — but restores, worker respawns,
        and serial re-runs do.
        """
        counts = self.counts()
        return (
            not self.fallback_events
            and not self.recoveries
            and all(
                counts[status] == 0
                for status in ("resumed", "retried", "failed", "timed-out")
            )
        )

    # -- rendering / raising ----------------------------------------

    def summary(self) -> str:
        """A one-line digest: ``5 trials: 3 ok, 1 retried, 1 failed``."""
        counts = self.counts()
        parts = [
            f"{count} {status}"
            for status, count in counts.items()
            if count
        ]
        text = f"{len(self.outcomes)} trials: {', '.join(parts) or 'none'}"
        if self.fallback_events:
            text += f"; {len(self.fallback_events)} fallback event(s)"
        checkpoints = len(self.recovery_events) - len(self.recoveries)
        if checkpoints:
            text += f"; {checkpoints} checkpoint(s)"
        if self.recoveries:
            text += f"; {len(self.recoveries)} recovery event(s)"
        return text

    def perf_summary(self) -> Optional[str]:
        """The one-line ``--perf`` stage digest, or ``None`` without one.

        Stages print in pipeline order (engine stages, then the
        sharded-driver stages, then anything unknown alphabetically)
        via :func:`repro.runtime.perf.format_stages`.
        """
        if not self.perf_stages:
            return None
        from repro.runtime.perf import format_stages

        return format_stages(self.perf_stages, self.perf_ticks)

    def describe(self) -> str:
        """The multi-line report: summary, failures, fallbacks, recoveries."""
        lines = [self.summary()]
        for outcome in self.outcomes:
            if not outcome.succeeded or outcome.status == "retried":
                lines.append(f"  {outcome.describe()}")
        for event in self.fallback_events:
            lines.append(f"  fallback: {event}")
        for recovery in self.recoveries:
            detail = ", ".join(
                f"{key}={value}"
                for key, value in recovery.items()
                if key != "kind"
            )
            lines.append(
                f"  recovery: {recovery.get('kind', '<unknown>')}"
                + (f" ({detail})" if detail else "")
            )
        return "\n".join(lines)

    def raise_on_failure(self) -> None:
        """Raise :class:`TrialExecutionError` if any trial failed."""
        if not self.ok:
            raise TrialExecutionError(self)


class TrialExecutionError(RuntimeError):
    """A batch finished with at least one trial beyond recovery.

    Carries the full :class:`RunReport` (``.report``) so callers can
    inspect the surviving siblings' results; ``__cause__`` is the
    first failing trial's final exception.
    """

    def __init__(self, report: RunReport) -> None:
        self.report = report
        failures = report.failures
        super().__init__(
            f"{len(failures)} of {len(report.outcomes)} trials failed "
            f"after retries: "
            + "; ".join(outcome.describe() for outcome in failures)
        )
        if failures and failures[0].error is not None:
            self.__cause__ = failures[0].error
