"""Deterministic fault injection for the trial runner.

The paper's environmental root causes are *failures* — dropped and
mangled packets — and the simulation models them faithfully.  This
module applies the same discipline to the execution substrate: a
:class:`FaultPlan` designates which trials misbehave, how, and on
which attempt, so every recovery path in
:class:`~repro.runtime.runner.TrialRunner` can be exercised on
purpose and asserted bitwise-identical to a clean run.

Fault kinds
-----------
``raise``
    The attempt raises :class:`InjectedFault` instead of running.
``hang``
    The attempt sleeps ``seconds`` before running normally — long
    enough to trip the per-trial timeout (whereupon the worker is
    replaced), short enough to finish eventually if no timeout is
    armed.
``kill``
    The worker process hard-exits (``os._exit``), breaking the whole
    pool the way a segfault or OOM kill would.  In serial execution
    it degrades to ``raise`` (killing the caller would be a test
    harness defect, not a simulated one).
``corrupt``
    The attempt returns a value whose *unpickling* fails in the
    parent — a mangled result payload.  The executor machinery
    treats that as a broken pool, which is exactly the recovery path
    worth testing.  In serial execution (no pickle boundary) it
    degrades to ``raise``.

Determinism: a plan is data — ``{trial index: (fault per attempt,
...)}`` — with no clocks or ambient randomness.  Attempts beyond a
trial's listed faults run clean, so bounded retry always converges,
and because retries re-execute the identical seeded trial, the
recovered campaign is bitwise-equal to an undisturbed one.

For chaos-testing real CLI runs, a plan can ride in the
``REPRO_FAULT_PLAN`` environment variable as JSON
(``{"1": ["kill"], "3": ["raise", "hang:5"]}``);
:func:`plan_from_env` is consulted by the runner when no explicit
plan was given.

Mid-run faults
--------------
Trial-level faults strike before a trial starts; the checkpoint /
supervision layer (:mod:`repro.runtime.checkpoint`,
:class:`~repro.runtime.shardpool.ShardPool`) needs failures that
strike *mid-run*, at a chosen tick.  ``$REPRO_MIDRUN_FAULT`` carries
one as JSON — ``{"kind": "kill-worker", "shard": 1, "tick": 40}`` —
parsed by :func:`midrun_fault_from_env` into a :class:`MidRunFault`:

``kill-worker``
    The shard's pool worker hard-exits on the first dispatch of tick
    ``tick``.  Supervision replays re-issue work under fresh epochs,
    so the fault fires exactly once per run.
``hang-worker``
    Same trigger, but the worker sleeps ``seconds`` instead of dying —
    long enough to trip the pool's heartbeat.
``corrupt-checkpoint``
    The checkpoint writer flips a payload byte after the file lands,
    so a later restore must fail the content hash.
``stale-checkpoint-version``
    The checkpoint writer stamps a future format version, so a later
    restore must refuse the file by version.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from typing import Any, Mapping, Optional, Sequence

import numpy as np

#: Recognised fault kinds.
FAULT_KINDS = ("raise", "hang", "kill", "corrupt")

#: Recognised mid-run fault kinds (``$REPRO_MIDRUN_FAULT``).
MIDRUN_FAULT_KINDS = (
    "kill-worker",
    "hang-worker",
    "corrupt-checkpoint",
    "stale-checkpoint-version",
)

#: Environment variable carrying a JSON fault plan for chaos runs.
FAULT_PLAN_ENV = "REPRO_FAULT_PLAN"

#: Environment variable carrying one JSON :class:`MidRunFault`.
MIDRUN_FAULT_ENV = "REPRO_MIDRUN_FAULT"

#: How long a ``hang`` sleeps unless the spec says otherwise.
DEFAULT_HANG_SECONDS = 30.0


class InjectedFault(RuntimeError):
    """The deliberate failure raised by ``raise`` (and serial
    ``kill``/``corrupt``) faults."""


class FaultPlanError(ValueError):
    """A malformed fault plan (bad kind, bad JSON, bad index)."""


@dataclass(frozen=True)
class FaultSpec:
    """One injected misbehaviour: what, and (for hangs) how long."""

    kind: str
    seconds: float = DEFAULT_HANG_SECONDS

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise FaultPlanError(
                f"unknown fault kind {self.kind!r}; known: {FAULT_KINDS}"
            )
        if self.seconds <= 0:
            raise FaultPlanError("fault seconds must be positive")

    @classmethod
    def parse(cls, text: str) -> "FaultSpec":
        """``"kill"`` or ``"hang:2.5"`` → a spec."""
        kind, _, argument = text.partition(":")
        kind = kind.strip().lower()
        if argument:
            try:
                return cls(kind=kind, seconds=float(argument))
            except ValueError as error:
                raise FaultPlanError(
                    f"bad fault argument in {text!r}: {error}"
                ) from None
        return cls(kind=kind)


class FaultPlan:
    """Which trials fault, how, attempt by attempt.

    ``faults`` maps a trial's batch index to the fault applied on
    each attempt (attempt 1 uses the first entry, …); attempts past
    the end run clean.
    """

    def __init__(
        self, faults: Mapping[int, Sequence[FaultSpec]] | None = None
    ) -> None:
        normalized: dict[int, tuple[FaultSpec, ...]] = {}
        for index, specs in (faults or {}).items():
            if int(index) < 0:
                raise FaultPlanError("trial indices must be >= 0")
            normalized[int(index)] = tuple(specs)
        self.faults = normalized

    def __bool__(self) -> bool:
        return bool(self.faults)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, FaultPlan) and self.faults == other.faults

    def __repr__(self) -> str:
        return f"FaultPlan({self.faults!r})"

    def spec_for(self, index: int, attempt: int) -> Optional[FaultSpec]:
        """The fault for (trial, 1-based attempt), or ``None``."""
        specs = self.faults.get(index, ())
        if 1 <= attempt <= len(specs):
            return specs[attempt - 1]
        return None

    # -- construction ------------------------------------------------

    @classmethod
    def from_mapping(cls, data: Mapping[Any, Any]) -> "FaultPlan":
        """``{index: ["kill", "hang:5", ...]}`` → a plan."""
        faults: dict[int, list[FaultSpec]] = {}
        for raw_index, raw_specs in data.items():
            try:
                index = int(raw_index)
            except (TypeError, ValueError):
                raise FaultPlanError(
                    f"trial index {raw_index!r} is not an integer"
                ) from None
            if isinstance(raw_specs, str):
                raw_specs = [raw_specs]
            specs = []
            for raw in raw_specs:
                if isinstance(raw, FaultSpec):
                    specs.append(raw)
                elif isinstance(raw, str):
                    specs.append(FaultSpec.parse(raw))
                else:
                    raise FaultPlanError(
                        f"fault entry {raw!r} is neither a string nor a "
                        "FaultSpec"
                    )
            faults[index] = specs
        return cls(faults)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        """Parse the ``REPRO_FAULT_PLAN`` JSON format."""
        try:
            data = json.loads(text)
        except json.JSONDecodeError as error:
            raise FaultPlanError(f"fault plan is not valid JSON: {error}")
        if not isinstance(data, Mapping):
            raise FaultPlanError("fault plan JSON must be an object")
        return cls.from_mapping(data)

    @classmethod
    def seeded(
        cls,
        seed: int,
        trials: int,
        rate: float,
        kinds: Sequence[str] = ("raise",),
        attempts: int = 1,
    ) -> "FaultPlan":
        """A randomized-but-reproducible plan.

        Each of ``trials`` trials independently faults with
        probability ``rate`` on its first ``attempts`` attempts,
        drawing the kind uniformly from ``kinds`` — all from a
        ``SeedSequence``-derived stream, so the same arguments always
        build the same plan (chaos you can replay).
        """
        if not 0.0 <= rate <= 1.0:
            raise FaultPlanError("rate must be within [0, 1]")
        rng = np.random.default_rng(np.random.SeedSequence(seed))
        faults: dict[int, list[FaultSpec]] = {}
        for index in range(trials):
            if rng.random() < rate:
                faults[index] = [
                    FaultSpec.parse(str(rng.choice(list(kinds))))
                    for _ in range(attempts)
                ]
        return cls(faults)


def plan_from_env() -> Optional[FaultPlan]:
    """The ``$REPRO_FAULT_PLAN`` plan, or ``None`` when unset/empty."""
    raw = os.environ.get(FAULT_PLAN_ENV)
    if not raw:
        return None
    return FaultPlan.from_json(raw)


@dataclass(frozen=True)
class MidRunFault:
    """One injected mid-run failure (see the module docstring).

    ``tick`` is the absolute 0-based tick index the fault keys on;
    ``shard`` restricts worker faults to one shard (``None`` = any);
    ``seconds`` is the ``hang-worker`` sleep.
    """

    kind: str
    tick: Optional[int] = None
    shard: Optional[int] = None
    seconds: float = DEFAULT_HANG_SECONDS

    def __post_init__(self) -> None:
        if self.kind not in MIDRUN_FAULT_KINDS:
            raise FaultPlanError(
                f"unknown mid-run fault kind {self.kind!r}; "
                f"known: {MIDRUN_FAULT_KINDS}"
            )
        if self.tick is not None and self.tick < 0:
            raise FaultPlanError("mid-run fault tick must be >= 0")
        if self.seconds <= 0:
            raise FaultPlanError("fault seconds must be positive")

    def matches_tick(self, tick: int) -> bool:
        """True when the fault applies at this tick (None = every)."""
        return self.tick is None or self.tick == tick

    def matches_shard(self, shard_id: int) -> bool:
        """True when the fault applies to this shard (None = every)."""
        return self.shard is None or self.shard == shard_id


def midrun_fault_from_env() -> Optional[MidRunFault]:
    """The ``$REPRO_MIDRUN_FAULT`` fault, or ``None`` when unset.

    Read from the environment (not passed through pickled arguments)
    so the same fault reaches pool workers under any process start
    method — the :data:`FAULT_PLAN_ENV` idiom.
    """
    raw = os.environ.get(MIDRUN_FAULT_ENV)
    if not raw:
        return None
    try:
        data = json.loads(raw)
    except json.JSONDecodeError as error:
        raise FaultPlanError(
            f"{MIDRUN_FAULT_ENV} is not valid JSON: {error}"
        ) from None
    if not isinstance(data, Mapping):
        raise FaultPlanError(f"{MIDRUN_FAULT_ENV} JSON must be an object")
    kind = data.get("kind")
    if not isinstance(kind, str):
        raise FaultPlanError(
            f"{MIDRUN_FAULT_ENV} needs a string 'kind'; got {kind!r}"
        )
    tick = data.get("tick")
    shard = data.get("shard")
    seconds = data.get("seconds", DEFAULT_HANG_SECONDS)
    return MidRunFault(
        kind=kind,
        tick=None if tick is None else int(tick),  # type: ignore[call-overload]
        shard=None if shard is None else int(shard),  # type: ignore[call-overload]
        seconds=float(seconds),  # type: ignore[arg-type]
    )


class _CorruptPayload:
    """Pickles fine in the worker, detonates on unpickle in the parent."""

    def __reduce__(self) -> tuple[Any, ...]:
        return (_detonate, ())


def _detonate() -> None:
    raise InjectedFault("injected corrupt result payload")


def apply_fault(
    spec: Optional[FaultSpec], *, index: int, attempt: int, in_worker: bool
) -> Optional[_CorruptPayload]:
    """Enact ``spec`` before a trial's attempt runs.

    Returns a corrupt payload to *substitute* for the trial's result
    (``corrupt`` in a worker), raises for ``raise``-style faults,
    hard-exits for ``kill`` in a worker, sleeps for ``hang`` — or
    returns ``None``, meaning "run the trial normally".
    """
    if spec is None:
        return None
    if spec.kind == "raise":
        raise InjectedFault(
            f"injected failure (trial {index}, attempt {attempt})"
        )
    if spec.kind == "hang":
        time.sleep(spec.seconds)
        return None
    if spec.kind == "kill":
        if in_worker:
            os._exit(86)
        raise InjectedFault(
            f"injected worker kill (trial {index}, attempt {attempt}; "
            "degraded to raise in serial execution)"
        )
    if spec.kind == "corrupt":
        if in_worker:
            return _CorruptPayload()
        raise InjectedFault(
            f"injected corrupt result (trial {index}, attempt {attempt}; "
            "degraded to raise in serial execution)"
        )
    raise FaultPlanError(f"unknown fault kind {spec.kind!r}")
