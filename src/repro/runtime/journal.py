"""Append-only checkpoint of completed trials (``--resume``).

A campaign that dies 20 minutes into a 25-minute sweep should not
start over.  The journal is one JSONL file per campaign — a line per
finished trial::

    {"key": "<cache key>", "status": "ok", "attempts": 1}

written with a single ``write()`` of a newline-terminated record and
flushed+fsynced, so a crash mid-record leaves at most one garbled
*trailing* line.  :meth:`TrialJournal.load` tolerates more than that
contract strictly requires: *any* unparsable or keyless line — mid-
file garbage from a disk hiccup or a concurrent writer, not just the
trailing torn record — is skipped and counted in ``dropped_lines``
rather than aborting the load, so one bad line never costs the
campaign its whole checkpoint.  On ``--resume`` the runner skips
every journaled-``ok``
trial whose result the :class:`~repro.runtime.cache.ResultCache`
still holds; everything else — unfinished, failed, or
journaled-but-evicted — re-executes under its original seed, so the
resumed campaign is bitwise-identical to an uninterrupted one.

The journal records *identity* (cache keys), never results; the
cache holds the payloads.  That split keeps the journal tiny and
append-only while the cache stays safely deletable: lose the cache
and resume simply re-runs everything.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Mapping, Union

#: Journal files live here unless told otherwise; overridden by
#: ``$REPRO_JOURNAL_DIR``.
DEFAULT_JOURNAL_DIR = Path.home() / ".cache" / "hotspots-repro" / "journals"


def default_journal_dir() -> Path:
    """``$REPRO_JOURNAL_DIR`` or the per-user default."""
    override = os.environ.get("REPRO_JOURNAL_DIR")
    return Path(override) if override else DEFAULT_JOURNAL_DIR


class TrialJournal:
    """One campaign's append-only completion log.

    Parameters
    ----------
    path:
        The JSONL file backing this journal.
    resume:
        ``True`` loads any existing entries (an interrupted run's
        checkpoint); ``False`` starts fresh, truncating a leftover
        file so a *new* campaign never inherits a stale checkpoint.
    """

    def __init__(
        self, path: Union[str, "os.PathLike[str]"], *, resume: bool = False
    ) -> None:
        self.path = Path(path)
        self._entries: dict[str, dict[str, object]] = {}
        self.dropped_lines = 0
        if resume:
            self.load()
        elif self.path.exists():
            try:
                self.path.unlink()
            except OSError:  # noqa: RP007 — best-effort truncation
                pass

    @classmethod
    def for_campaign(
        cls,
        campaign_key: str,
        directory: Union[str, "os.PathLike[str]", None] = None,
        *,
        resume: bool = False,
    ) -> "TrialJournal":
        """The journal file for one campaign identity.

        ``campaign_key`` is a stable hash of (experiment, parameters,
        trial count, base seed) — the same campaign always maps to
        the same file, which is what lets ``--resume`` find its
        checkpoint without the caller naming one.
        """
        base = Path(directory) if directory is not None else default_journal_dir()
        return cls(base / f"{campaign_key}.jsonl", resume=resume)

    # -- reading -----------------------------------------------------

    def load(self) -> None:
        """(Re)read the file, skip-and-counting any garbled line.

        Garbled means unparsable JSON or a record without a string
        ``key`` — trailing (a crash mid-append) or mid-file (torn
        storage); every such line increments ``dropped_lines`` and
        every well-formed line after it still loads.
        """
        self._entries = {}
        self.dropped_lines = 0
        try:
            text = self.path.read_text(encoding="utf-8")
        except OSError:
            return
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                # A crash mid-append leaves one partial record; count
                # it so reports can mention the truncation.
                self.dropped_lines += 1
                continue
            if isinstance(entry, dict) and isinstance(entry.get("key"), str):
                self._entries[entry["key"]] = entry
            else:
                self.dropped_lines += 1

    def completed(self, key: str) -> bool:
        """True when ``key`` finished successfully in a prior run."""
        entry = self._entries.get(key)
        return entry is not None and entry.get("status") == "ok"

    @property
    def entries(self) -> Mapping[str, Mapping[str, object]]:
        """Every loaded/recorded entry, keyed by cache key."""
        return dict(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    # -- writing -----------------------------------------------------

    def record(
        self, key: str, *, status: str, attempts: int, **extra: object
    ) -> None:
        """Append one record's final outcome (durable immediately).

        Failed trials are recorded too — for post-mortems — but only
        ``status="ok"`` entries count as completed on resume.
        ``extra`` fields ride along verbatim (the checkpoint index
        records tick, file name, and spec hash this way); they may
        not shadow the three required keys.
        """
        reserved = {"key", "status", "attempts"} & set(extra)
        if reserved:
            raise ValueError(
                f"TrialJournal.record: extra fields {sorted(reserved)} "
                "would shadow required keys"
            )
        entry: dict[str, object] = {
            "key": key,
            "status": status,
            "attempts": int(attempts),
            **extra,
        }
        line = json.dumps(entry, sort_keys=True) + "\n"
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(line)
            handle.flush()
            os.fsync(handle.fileno())
        self._entries[key] = entry
