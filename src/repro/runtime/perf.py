"""Opt-in per-stage timing for the simulator's tick loop.

The engine never reads the clock itself (the determinism lint bans
wall-clock calls from ``repro.sim``): it asks this module for a stage
timer each run and calls ``start``/``lap`` around its four stages
(generate / filter / dispatch / infect).  When no collection is
active — the default — the timer is a shared no-op and the tick loop
pays two attribute calls per stage.  ``hotspots run --perf`` wraps the
campaign in :func:`perf_collection`, and the accumulated seconds ride
back on :class:`repro.runtime.report.RunReport.perf_stages`.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterator, Mapping, Optional, Protocol

#: Engine stages, in tick order (also the display order).
STAGES = ("generate", "filter", "dispatch", "infect")

#: Sharded-driver stages, in tick order.  Pool mode's streamed
#: pipeline laps ``stage`` (per-shard bucket gather), ``dispatch``
#: (staging + ring write), ``wait`` (reply latency) and ``collect``
#: (reply reads) where the in-process paths lap ``route``/``exchange``
#: and ``shards``.
SHARD_STAGES = (
    "generate",
    "filter",
    "route",
    "exchange",
    "stage",
    "dispatch",
    "wait",
    "collect",
    "shards",
    "transport",
    "merge",
)

#: Display order: engine stages first, then the sharded-driver-only
#: stage names, then (in :func:`format_stages`) anything unknown.
_KNOWN_STAGES = STAGES + tuple(
    stage for stage in SHARD_STAGES if stage not in STAGES
)


class StageTimer(Protocol):
    """What the tick loops (and the shard pool) expect of a timer."""

    def start(self) -> None: ...

    def lap(self, stage: str) -> None: ...

    def tick(self) -> None: ...


class StageTimings:
    """Accumulated wall-clock seconds per engine stage."""

    __slots__ = ("seconds", "ticks")

    def __init__(self) -> None:
        self.seconds: dict[str, float] = {}
        self.ticks = 0

    def add(self, stage: str, elapsed: float) -> None:
        """Fold one stage interval into the running totals."""
        self.seconds[stage] = self.seconds.get(stage, 0.0) + elapsed


def format_stages(seconds: Mapping[str, float], ticks: int) -> str:
    """One-line human summary, known stages first."""
    ordered = [stage for stage in _KNOWN_STAGES if stage in seconds]
    ordered += [
        stage for stage in sorted(seconds) if stage not in _KNOWN_STAGES
    ]
    parts = [f"{stage} {seconds[stage]:.3f}s" for stage in ordered]
    total = sum(seconds.values())
    parts.append(f"total {total:.3f}s over {ticks} ticks")
    return " | ".join(parts)


class _LiveTimer:
    """Feeds stage intervals into the active collection."""

    __slots__ = ("_timings", "_last")

    def __init__(self, timings: StageTimings) -> None:
        self._timings = timings
        self._last = 0.0

    def start(self) -> None:
        self._last = time.perf_counter()

    def lap(self, stage: str) -> None:
        now = time.perf_counter()
        self._timings.add(stage, now - self._last)
        self._last = now

    def tick(self) -> None:
        self._timings.ticks += 1


class _NullTimer:
    """The free default: timing calls do nothing."""

    __slots__ = ()

    def start(self) -> None:
        pass

    def lap(self, stage: str) -> None:
        pass

    def tick(self) -> None:
        pass


_NULL_TIMER = _NullTimer()
_active: Optional[StageTimings] = None


@contextmanager
def perf_collection() -> Iterator[StageTimings]:
    """Collect stage timings from every run inside the block.

    Timings from nested or sequential runs accumulate into the one
    yielded :class:`StageTimings`; collection is process-local, so
    pooled workers are not covered (``--perf`` forces serial trials).
    """
    global _active
    previous = _active
    _active = timings = StageTimings()
    try:
        yield timings
    finally:
        _active = previous


def stage_timer() -> "_LiveTimer | _NullTimer":
    """A live timer if collection is active, else the shared no-op."""
    if _active is not None:
        return _LiveTimer(_active)
    return _NULL_TIMER


def active_timings() -> Optional[StageTimings]:
    """The collection currently in effect, if any."""
    return _active
