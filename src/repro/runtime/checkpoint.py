"""Deterministic mid-run checkpoint/restore for simulation runs.

A campaign-scale run that dies at tick 3,999 of 4,000 should not
start over.  This module gives every execution mode — the serial
engine, in-process shards, and the shard worker pool — a versioned,
content-hashed snapshot format written at a configurable tick cadence
(``SimulationSpec.checkpoint_every``), and a loader that validates a
snapshot *belongs* to the spec before any state is touched.

File format
-----------
One checkpoint is one file, ``tick-<N>.ckpt``::

    {"format": "repro-checkpoint", "version": 1, "spec_hash": ...,
     "mode": "serial" | "shard", "tick": N,
     "payload_bytes": ..., "payload_sha256": ...}\\n
    <payload_bytes bytes of pickled payload>

The header line is JSON so a truncated or corrupted file is
diagnosable without unpickling anything; the payload is validated by
length and SHA-256 digest before ``pickle.loads`` ever runs.  Writes
go through the journal idiom: temp file, flush, fsync, atomic rename
— a crash mid-write can leave a stale temp file but never a torn
checkpoint.  An append-only ``checkpoints.jsonl``
(:class:`~repro.runtime.journal.TrialJournal`) indexes every write.

Validation (:func:`load_checkpoint`) fails with a
:class:`CheckpointError` *naming the offending field* — wrong
``checkpoint.spec_hash``, truncated ``checkpoint.payload_bytes``,
future ``checkpoint.version`` — never with silently-divergent
results: every code path either restores exactly or raises.

``spec_hash`` fingerprints the identity-bearing structure of a
:class:`~repro.sim.spec.SimulationSpec`: worm (by pickle digest —
worm objects are value-like), population address table, seed
material, tick budget, shard boundaries, sensor/grid layout,
containment and environment parameters.  ``checkpoint_every`` itself
is deliberately excluded — cadence never changes results, so a run
may be restored under a different cadence.

Recovery events
---------------
Mirroring :mod:`repro.runtime.perf`, an ambient collector
(:func:`recovery_collection`) gathers checkpoint / restore /
worker-respawn / serial-rerun events from anywhere in the engine
stack; the experiment registry attaches them to the
:class:`~repro.runtime.report.RunReport` so the CLI can print what
recovered and why.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterator, Optional, Union

from repro.runtime.faults import midrun_fault_from_env
from repro.runtime.journal import TrialJournal

if TYPE_CHECKING:
    from repro.sim.spec import SimulationSpec

#: The header's ``format`` marker.
FORMAT_NAME = "repro-checkpoint"

#: The snapshot format version this build reads and writes.
FORMAT_VERSION = 1

#: Checkpoint files are ``tick-<N>.ckpt`` (zero-padded so the
#: lexicographically greatest name is the latest tick).
CHECKPOINT_SUFFIX = ".ckpt"

#: The per-directory append-only index of written checkpoints.
JOURNAL_NAME = "checkpoints.jsonl"


class CheckpointError(RuntimeError):
    """A checkpoint failed validation; the message names the field."""


# -- spec fingerprint --------------------------------------------------


def _pickle_digest(value: object) -> str:
    return hashlib.sha256(
        pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
    ).hexdigest()


def _array_digest(array: Any) -> str:
    return hashlib.sha256(array.tobytes()).hexdigest()


def spec_fingerprint(spec: "SimulationSpec") -> dict[str, Any]:
    """The identity-bearing structure of a spec, as canonical JSON data.

    Everything that changes *results* belongs here; knobs that only
    change execution (cadence, workers, transport) do not.  The worm
    is fingerprinted by pickle digest (worm objects are immutable
    value objects; all per-run state lives in ``WormState``); the
    environment is fingerprinted structurally because its policy
    caches compiled kernels mid-run.
    """
    plan = spec.shard_plan
    environment = spec.environment
    loss = environment.loss
    nat = environment.nat
    return {
        "format": FORMAT_NAME,
        "worm": _pickle_digest(spec.worm),
        "population": _array_digest(spec.population.addresses()),
        "seed_addrs": (
            None
            if spec.seed_addrs is None
            else _array_digest(spec.seed_addrs)
        ),
        "seed_count": int(spec.seed_count),
        "scan_rate": float(spec.scan_rate),
        "tick_seconds": float(spec.tick_seconds),
        "max_time": float(spec.max_time),
        "stop_at_fraction": float(spec.stop_at_fraction),
        "patch_rate": float(spec.patch_rate),
        "shards": list(plan.boundaries) if plan is not None else None,
        "topology": (
            None
            if spec.topology is None
            else type(spec.topology).__name__
        ),
        "sensors": [
            [sensor.name, int(sensor.block.first), int(sensor.block.last)]
            for sensor in spec.sensors
        ],
        "sensor_grids": [
            [_array_digest(grid.prefixes), int(grid.alert_threshold)]
            for grid in spec.sensor_grids
        ],
        "containment": (
            None
            if spec.containment is None
            else [
                float(spec.containment.quorum_fraction),
                float(spec.containment.reaction_delay),
                float(spec.containment.block_probability),
            ]
        ),
        "trace": spec.trace_recorder is not None,
        "loss": [
            float(loss.base_rate),
            [
                [str(regional.region), float(regional.loss_rate)]
                for regional in loss.region_losses
            ],
        ],
        "nat": [
            int(nat.num_hosts),
            str(nat.intra_private_model),
            _array_digest(nat._addrs),
        ],
        "policy": [
            [
                rule.direction,
                str(rule.region),
                rule.worm,
                rule.action.name,
            ]
            for rule in environment.policy.rules
        ],
    }


def spec_hash(spec: "SimulationSpec") -> str:
    """SHA-256 over the canonical-JSON spec fingerprint."""
    canonical = json.dumps(spec_fingerprint(spec), sort_keys=True)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


# -- writing -----------------------------------------------------------


def checkpoint_filename(tick: int) -> str:
    """The file name for one tick's checkpoint."""
    return f"tick-{tick:08d}{CHECKPOINT_SUFFIX}"


class Checkpointer:
    """Writes one run's checkpoints at a fixed tick cadence.

    Parameters
    ----------
    directory:
        Where checkpoint files and the ``checkpoints.jsonl`` index
        live (created on first write).
    every:
        Tick cadence: a checkpoint lands after ticks ``every - 1``,
        ``2*every - 1``, ... (0-based), i.e. every ``every`` ticks.
    spec_hash:
        The owning spec's :func:`spec_hash`, stamped into every
        header.
    mode:
        ``"serial"`` or ``"shard"`` — which engine layout the payload
        encodes; restore refuses a mode mismatch.
    """

    def __init__(
        self,
        directory: Union[str, "os.PathLike[str]"],
        *,
        every: int,
        spec_hash: str,
        mode: str,
    ) -> None:
        if every < 1:
            raise ValueError(
                f"Checkpointer.every must be at least 1, got {every}"
            )
        if mode not in ("serial", "shard"):
            raise ValueError(
                f"Checkpointer.mode: expected 'serial' or 'shard', "
                f"got {mode!r}"
            )
        self.directory = Path(directory)
        self.every = every
        self.spec_hash = spec_hash
        self.mode = mode
        self._journal: Optional[TrialJournal] = None

    def due(self, tick: int) -> bool:
        """True when a checkpoint should land after this 0-based tick."""
        return (tick + 1) % self.every == 0

    def _index(self) -> TrialJournal:
        if self._journal is None:
            self._journal = TrialJournal(
                self.directory / JOURNAL_NAME, resume=True
            )
        return self._journal

    def write(self, tick: int, payload: dict[str, Any]) -> Path:
        """Persist one tick's state snapshot durably and atomically.

        The payload is pickled immediately (so live engine objects
        may keep mutating afterwards), hashed, and written through
        temp-file + flush + fsync + atomic rename.  The
        ``corrupt-checkpoint`` / ``stale-checkpoint-version`` mid-run
        faults hook in here so restore-time validation can be chaos-
        tested end-to-end.
        """
        fault = midrun_fault_from_env()
        version = FORMAT_VERSION
        if (
            fault is not None
            and fault.kind == "stale-checkpoint-version"
            and fault.matches_tick(tick)
        ):
            version = FORMAT_VERSION + 1
        data = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        header = {
            "format": FORMAT_NAME,
            "version": version,
            "spec_hash": self.spec_hash,
            "mode": self.mode,
            "tick": int(tick),
            "payload_bytes": len(data),
            "payload_sha256": hashlib.sha256(data).hexdigest(),
        }
        header_line = json.dumps(header, sort_keys=True) + "\n"
        self.directory.mkdir(parents=True, exist_ok=True)
        final = self.directory / checkpoint_filename(tick)
        temp = final.with_name(final.name + ".tmp")
        with open(temp, "wb") as handle:
            handle.write(header_line.encode("utf-8"))
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp, final)
        if (
            fault is not None
            and fault.kind == "corrupt-checkpoint"
            and fault.matches_tick(tick)
        ):
            _flip_payload_byte(final, len(header_line), len(data))
        self._index().record(
            f"tick:{tick}",
            status="ok",
            attempts=1,
            tick=int(tick),
            file=final.name,
            spec_hash=self.spec_hash,
            mode=self.mode,
        )
        record_recovery("checkpoint", tick=int(tick), file=str(final))
        return final


def _flip_payload_byte(
    path: Path, header_bytes: int, payload_bytes: int
) -> None:
    """Chaos hook: corrupt one mid-payload byte in a written file."""
    offset = header_bytes + payload_bytes // 2
    with open(path, "r+b") as handle:
        handle.seek(offset)
        byte = handle.read(1)
        handle.seek(offset)
        handle.write(bytes([byte[0] ^ 0xFF]))


# -- reading -----------------------------------------------------------


def latest_checkpoint(
    directory: Union[str, "os.PathLike[str]"]
) -> Path:
    """The highest-tick checkpoint file in a directory."""
    base = Path(directory)
    candidates = sorted(base.glob(f"tick-*{CHECKPOINT_SUFFIX}"))
    if not candidates:
        raise CheckpointError(
            f"checkpoint.path: no checkpoint files in {base}"
        )
    return candidates[-1]


def load_checkpoint(
    path: Union[str, "os.PathLike[str]"],
    *,
    expected_spec_hash: Optional[str] = None,
    expected_mode: Optional[str] = None,
) -> dict[str, Any]:
    """Read and validate one checkpoint; returns the payload dict.

    ``path`` may be a checkpoint file or a directory (the latest
    checkpoint inside is used).  Every validation failure raises
    :class:`CheckpointError` naming the offending field; the pickled
    payload is only deserialized after the length and SHA-256 checks
    pass.  The returned payload carries ``tick`` and ``mode`` from
    the header.
    """
    target = Path(path)
    if target.is_dir():
        target = latest_checkpoint(target)
    try:
        raw = target.read_bytes()
    except OSError as error:
        raise CheckpointError(
            f"checkpoint.path: cannot read {target}: {error}"
        ) from error
    newline = raw.find(b"\n")
    if newline < 0:
        raise CheckpointError(
            f"checkpoint.header: {target} has no header line "
            "(not a checkpoint file, or truncated before the payload)"
        )
    try:
        header = json.loads(raw[:newline].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError):
        raise CheckpointError(
            f"checkpoint.header: {target} does not start with a JSON "
            "header line"
        ) from None
    if not isinstance(header, dict) or header.get("format") != FORMAT_NAME:
        raise CheckpointError(
            f"checkpoint.format: expected {FORMAT_NAME!r}, "
            f"got {header.get('format') if isinstance(header, dict) else header!r}"
        )
    version = header.get("version")
    if version != FORMAT_VERSION:
        raise CheckpointError(
            f"checkpoint.version: file has version {version!r}, this "
            f"build reads version {FORMAT_VERSION} — refusing to guess "
            "at an unknown layout"
        )
    if (
        expected_spec_hash is not None
        and header.get("spec_hash") != expected_spec_hash
    ):
        raise CheckpointError(
            "checkpoint.spec_hash: snapshot belongs to a different "
            f"simulation spec (file: {header.get('spec_hash')!r}, "
            f"expected: {expected_spec_hash!r}) — restoring it would "
            "silently diverge"
        )
    mode = header.get("mode")
    if expected_mode is not None and mode != expected_mode:
        raise CheckpointError(
            f"checkpoint.mode: snapshot was written by a {mode!r} run "
            f"but this run executes as {expected_mode!r}"
        )
    data = raw[newline + 1 :]
    declared = header.get("payload_bytes")
    if not isinstance(declared, int) or len(data) != declared:
        raise CheckpointError(
            f"checkpoint.payload_bytes: header declares {declared!r} "
            f"bytes, file holds {len(data)} (truncated snapshot?)"
        )
    digest = hashlib.sha256(data).hexdigest()
    if digest != header.get("payload_sha256"):
        raise CheckpointError(
            "checkpoint.payload_sha256: content digest mismatch "
            f"(header {header.get('payload_sha256')!r}, payload "
            f"{digest!r}) — the snapshot is corrupted"
        )
    try:
        payload = pickle.loads(data)
    except Exception as error:
        raise CheckpointError(
            f"checkpoint.payload: cannot unpickle snapshot: {error}"
        ) from error
    if not isinstance(payload, dict):
        raise CheckpointError(
            "checkpoint.payload: expected a state dict, got "
            f"{type(payload).__name__}"
        )
    payload["tick"] = int(header["tick"])
    payload["mode"] = mode
    return payload


# -- recovery-event collection ----------------------------------------


@dataclass
class RecoveryLog:
    """Recovery events gathered while a collection context is active.

    Each event is a plain dict with at least a ``kind`` key —
    ``"checkpoint"``, ``"restore"``, ``"worker-respawn"``, or
    ``"serial-rerun"`` — plus kind-specific detail (tick, shard id,
    reason, replayed tick count).
    """

    events: list[dict[str, Any]] = field(default_factory=list)


#: Active collection contexts (a stack: events go to every level, so
#: an outer campaign-wide collector still sees what an inner test
#: context captured).
_ACTIVE_LOGS: list[RecoveryLog] = []


@contextmanager
def recovery_collection() -> Iterator[RecoveryLog]:
    """Collect recovery events from everything run inside the block."""
    log = RecoveryLog()
    _ACTIVE_LOGS.append(log)
    try:
        yield log
    finally:
        _ACTIVE_LOGS.remove(log)


def record_recovery(kind: str, **info: Any) -> None:
    """Report one recovery event to every active collection."""
    if not _ACTIVE_LOGS:
        return
    event: dict[str, Any] = {"kind": kind, **info}
    for log in _ACTIVE_LOGS:
        log.events.append(event)


__all__ = [
    "CHECKPOINT_SUFFIX",
    "CheckpointError",
    "Checkpointer",
    "FORMAT_NAME",
    "FORMAT_VERSION",
    "JOURNAL_NAME",
    "RecoveryLog",
    "checkpoint_filename",
    "latest_checkpoint",
    "load_checkpoint",
    "record_recovery",
    "recovery_collection",
    "spec_fingerprint",
    "spec_hash",
]
