"""Process-pool execution of shard engines.

The sharded simulator's pool mode keeps each shard's engine resident
in a dedicated worker process across the whole run: shard state
(population slice, sensor clones, verdict tables) is built once from
the pickled :class:`~repro.sim.spec.SimulationSpec` and then receives
one routed probe batch per tick.  ``ProcessPoolExecutor`` does not pin
tasks to workers, so pinning is by construction — every pool here has
exactly one worker, and a shard always submits to the same pool
(shards may share a pool when there are more shards than ``workers``;
a single-worker pool executes its queue FIFO, so per-shard ordering
is preserved).

Failure philosophy matches :class:`~repro.runtime.runner.TrialRunner`:
the pool is an optimization, never a semantic.  Any pool-layer error
surfaces to the driver, which discards the pools and re-runs the
outbreak in-process from the original seed material — bitwise the
same result, just slower.
"""

from __future__ import annotations

from concurrent.futures import Future, ProcessPoolExecutor
from typing import TYPE_CHECKING, Optional

import numpy as np

if TYPE_CHECKING:
    from repro.sim.shard import ShardEngine
    from repro.sim.spec import SimulationSpec

#: One tick's routed work for one shard: ``(now, sources, targets,
#: source_policy_indices, loss_ok, immunize)`` — the last three are
#: ``None`` when the run has no policy kernel / active loss / pending
#: patches.
TickPayload = tuple[
    float,
    np.ndarray,
    np.ndarray,
    Optional[np.ndarray],
    Optional[np.ndarray],
    Optional[np.ndarray],
]

#: A shard's tick reply: fresh infections (sorted-unique within the
#: shard interval) and the delivered-probe count.
TickReply = tuple[np.ndarray, int]

#: End-of-run sensor state: the worker's sensor and grid clones.
SensorState = tuple[list[object], list[object]]

#: Engines resident in *this worker process*, keyed by shard id.
_ENGINES: dict[int, "ShardEngine"] = {}


def _build_engine(
    spec: "SimulationSpec", shard_id: int, seed_addrs: np.ndarray
) -> int:
    """Worker-side: construct and seed one shard engine."""
    from repro.sim.shard import ShardEngine

    engine = ShardEngine(spec, shard_id)
    engine.seed(seed_addrs)
    _ENGINES[shard_id] = engine
    return shard_id


def _run_tick(shard_id: int, payload: TickPayload) -> TickReply:
    """Worker-side: apply one routed batch to a resident engine."""
    now, sources, targets, source_indices, loss_ok, immunize = payload
    engine = _ENGINES[shard_id]
    if immunize is not None:
        engine.immunize(immunize)
    return engine.process(now, sources, targets, source_indices, loss_ok)


def _collect_sensors(shard_id: int) -> SensorState:
    """Worker-side: hand the shard's sensor clones back for merging."""
    engine = _ENGINES[shard_id]
    return list(engine.sensors), list(engine.grids)


class ShardPool:
    """Dedicated single-worker pools hosting resident shard engines."""

    def __init__(
        self, spec: "SimulationSpec", num_shards: int, workers: int
    ):
        self._spec = spec
        self._num_shards = num_shards
        pool_count = max(1, min(workers, num_shards))
        self._pools = [
            ProcessPoolExecutor(max_workers=1) for _ in range(pool_count)
        ]

    def _pool_for(self, shard_id: int) -> ProcessPoolExecutor:
        return self._pools[shard_id % len(self._pools)]

    def seed(self, per_shard_seeds: list[np.ndarray]) -> None:
        """Build every shard engine remotely and apply its seed set."""
        futures: list[Future[int]] = [
            self._pool_for(shard_id).submit(
                _build_engine, self._spec, shard_id, seed_addrs
            )
            for shard_id, seed_addrs in enumerate(per_shard_seeds)
        ]
        for future in futures:
            future.result()

    def tick(self, payloads: list[TickPayload]) -> list[TickReply]:
        """One tick's routed batches out, per-shard replies back.

        Replies are collected in shard order, so the driver's merge is
        deterministic regardless of worker completion order.
        """
        futures: list[Future[TickReply]] = [
            self._pool_for(shard_id).submit(_run_tick, shard_id, payload)
            for shard_id, payload in enumerate(payloads)
        ]
        return [future.result() for future in futures]

    def collect_sensors(self) -> list[SensorState]:
        """Every shard's sensor clones, in shard order."""
        futures: list[Future[SensorState]] = [
            self._pool_for(shard_id).submit(_collect_sensors, shard_id)
            for shard_id in range(self._num_shards)
        ]
        return [future.result() for future in futures]

    def close(self) -> None:
        """Tear the worker processes down (broken pools included).

        ``wait=True`` so every executor's management thread has fully
        exited before the interpreter can reach the concurrent.futures
        atexit hook — a non-waiting shutdown races that hook against
        the wakeup-pipe close and spews ``Exception ignored`` noise at
        exit.  Pools are idle (every tick future already resolved) or
        broken here, so the join is prompt either way.
        """
        for pool in self._pools:
            pool.shutdown(wait=True, cancel_futures=True)
