"""Process-pool execution of shard engines.

The sharded simulator's pool mode keeps each shard's engine resident
in a dedicated worker process across the whole run: shard state
(population slice, sensor clones, verdict tables) is built once from
the pickled :class:`~repro.sim.spec.SimulationSpec` and then receives
one routed probe batch per tick.  ``ProcessPoolExecutor`` does not pin
tasks to workers, so pinning is by construction — every pool here has
exactly one worker, and a shard always submits to the same pool
(shards may share a pool when there are more shards than ``workers``;
a single-worker pool executes its queue FIFO, so per-shard ordering
is preserved).

**Transports.**  The per-tick batches move one of two ways:

* ``"shmem"`` (default): the driver stages each shard's arrays in
  that shard's shared-memory *request* arena
  (:mod:`repro.runtime.shmem`), the worker maps the segment and reads
  them zero-copy, and the fresh-infection reply returns through a
  *reply* arena.  Only a tiny control tuple — shard id, tick time,
  epoch, segment names — crosses the executor's pickle pipe.
* ``"pickle"``: arrays ride the executor pipe directly (the original
  transport, and the automatic fallback where POSIX shared memory is
  unavailable).

Both transports are bitwise-identical by construction: the worker sees
the same arrays either way.  :meth:`ShardPool.stats` reports how many
bytes each path moved, so benchmarks can show the pipe traffic shrink.

Failure philosophy matches :class:`~repro.runtime.runner.TrialRunner`:
the pool is an optimization, never a semantic.  Any pool-layer error —
a dead worker, a truncated or stale shared-memory message
(:class:`~repro.runtime.shmem.ShmProtocolError`), a segment that
vanished mid-tick — surfaces to the driver, which discards the pools
and re-runs the outbreak in-process from the original seed material —
bitwise the same result, just slower.

For fault-path tests, ``REPRO_SHARD_FAULT`` may hold a JSON object
``{"kind": ..., "shard": int, "epoch": int}`` with kind ``"kill"``
(worker hard-exits mid-tick), ``"garble-header"`` (the request
header's magic is clobbered after writing), or ``"stale-epoch"`` (the
control message carries the previous epoch, simulating a reader racing
a segment resize).  The hook follows the
:mod:`repro.runtime.faults` environment-variable idiom so it works
under any process start method.
"""

from __future__ import annotations

import json
import os
import pickle
from concurrent.futures import Future, ProcessPoolExecutor
from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.runtime.shmem import (
    ShmArena,
    attach,
    capacity_for,
    read_frames,
    shared_memory_available,
    write_frames,
)

if TYPE_CHECKING:
    from multiprocessing.shared_memory import SharedMemory

    from repro.sim.shard import ShardEngine
    from repro.sim.spec import SimulationSpec

#: One tick's routed work for one shard: ``(now, sources, targets,
#: source_policy_indices, loss_ok, immunize)`` — the last three are
#: ``None`` when the run has no policy kernel / active loss / pending
#: patches.
TickPayload = tuple[
    float,
    np.ndarray,
    np.ndarray,
    Optional[np.ndarray],
    Optional[np.ndarray],
    Optional[np.ndarray],
]

#: A shard's tick reply: fresh infections (sorted-unique within the
#: shard interval) and the delivered-probe count.
TickReply = tuple[np.ndarray, int]

#: The shmem transport's control message: ``(shard_id, now, epoch,
#: request_name, reply_name)`` — the only per-tick pickle traffic.
ShmControl = tuple[int, float, int, str, str]

#: End-of-run sensor state: the worker's sensor and grid clones.
SensorState = tuple[list[object], list[object]]

#: Environment variable carrying an injected shard-transport fault.
FAULT_ENV = "REPRO_SHARD_FAULT"

#: Engines resident in *this worker process*, keyed by shard id.
_ENGINES: dict[int, "ShardEngine"] = {}

#: Worker-side attachment cache, keyed by ``(shard_id, role)``; an
#: entry is replaced (and the old mapping closed) when the driver
#: grows a segment under a new name.
_SEGMENTS: dict[tuple[int, str], "SharedMemory"] = {}


def _shard_fault() -> Optional[dict[str, object]]:
    """The injected transport fault, if any (test hook)."""
    raw = os.environ.get(FAULT_ENV)
    if not raw:
        return None
    try:
        fault = json.loads(raw)
    except ValueError:  # pragma: no cover - malformed test config
        return None
    return fault if isinstance(fault, dict) else None


def _fault_matches(
    fault: Optional[dict[str, object]],
    kind: str,
    shard_id: int,
    epoch: int,
) -> bool:
    return (
        fault is not None
        and fault.get("kind") == kind
        and int(fault.get("shard", -1)) == shard_id
        and int(fault.get("epoch", -1)) == epoch
    )


def _build_engine(
    spec: "SimulationSpec", shard_id: int, seed_addrs: np.ndarray
) -> int:
    """Worker-side: construct and seed one shard engine."""
    from repro.sim.shard import ShardEngine

    engine = ShardEngine(spec, shard_id)
    engine.seed(seed_addrs)
    _ENGINES[shard_id] = engine
    return shard_id


def _run_tick(shard_id: int, payload: TickPayload) -> TickReply:
    """Worker-side: apply one pickled batch to a resident engine."""
    now, sources, targets, source_indices, loss_ok, immunize = payload
    engine = _ENGINES[shard_id]
    if immunize is not None:
        engine.immunize(immunize)
    return engine.process(now, sources, targets, source_indices, loss_ok)


def _attached(shard_id: int, role: str, name: str) -> "SharedMemory":
    """Worker-side: the mapped segment for a shard role, cache-fresh.

    When the driver grew the segment (new name), the stale mapping is
    closed — tolerating live loaned views, whose mapping simply
    outlives the cache entry — and the new one attached.
    """
    key = (shard_id, role)
    cached = _SEGMENTS.get(key)
    if cached is not None and cached.name == name:
        return cached
    if cached is not None:
        try:
            cached.close()
        except BufferError:  # noqa: RP007 — a live loaned view pins the old mapping; it outlives the cache entry harmlessly
            pass
    segment = attach(name)
    _SEGMENTS[key] = segment
    return segment


def _run_tick_shm(
    shard_id: int,
    now: float,
    epoch: int,
    request_name: str,
    reply_name: str,
) -> int:
    """Worker-side: one tick through the shared-memory transport.

    Reads the routed batch zero-copy from the request segment, runs
    the resident engine, writes the fresh-infection frame into the
    (driver-pre-sized) reply segment, and returns only the delivered
    count — the reply arrays never touch the pickle pipe.
    """
    if _fault_matches(_shard_fault(), "kill", shard_id, epoch):
        os._exit(86)
    request = _attached(shard_id, "request", request_name)
    sources, targets, source_indices, loss_ok, immunize = read_frames(
        request.buf, epoch
    )
    assert sources is not None and targets is not None
    engine = _ENGINES[shard_id]
    if immunize is not None:
        engine.immunize(immunize)
    fresh, delivered = engine.process(
        now, sources, targets, source_indices, loss_ok
    )
    reply = _attached(shard_id, "reply", reply_name)
    write_frames(reply.buf, epoch, [fresh])
    return delivered


def _collect_sensors(shard_id: int) -> SensorState:
    """Worker-side: hand the shard's sensor clones back for merging."""
    engine = _ENGINES[shard_id]
    return list(engine.sensors), list(engine.grids)


def _payload_nbytes(payload: TickPayload) -> int:
    """Array bytes one pickled payload would push through the pipe."""
    return sum(
        frame.nbytes
        for frame in payload[1:]
        if isinstance(frame, np.ndarray)
    )


class ShardPool:
    """Dedicated single-worker pools hosting resident shard engines.

    Parameters
    ----------
    spec, num_shards, workers:
        As built by :class:`~repro.sim.shard.ShardedSimulator`.
    transport:
        ``"shmem"`` or ``"pickle"`` (see the module docstring).  The
        shmem transport silently falls back to pickle where
        ``multiprocessing.shared_memory`` is unavailable.
    """

    def __init__(
        self,
        spec: "SimulationSpec",
        num_shards: int,
        workers: int,
        transport: str = "shmem",
    ):
        if transport not in ("shmem", "pickle"):
            raise ValueError(
                f"ShardPool.transport: expected 'shmem' or 'pickle', "
                f"got {transport!r}"
            )
        if transport == "shmem" and not shared_memory_available():
            transport = "pickle"  # pragma: no cover - platform gap
        self._spec = spec
        self._num_shards = num_shards
        self._transport = transport
        self._epoch = 0
        self._ticks = 0
        self._payload_bytes = 0
        self._pipe_bytes = 0
        self._arenas: dict[int, tuple[ShmArena, ShmArena]] = {}
        self._closed = False
        pool_count = max(1, min(workers, num_shards))
        self._pools = [
            ProcessPoolExecutor(max_workers=1) for _ in range(pool_count)
        ]

    @property
    def transport(self) -> str:
        """The transport actually in use (after any fallback)."""
        return self._transport

    def _pool_for(self, shard_id: int) -> ProcessPoolExecutor:
        return self._pools[shard_id % len(self._pools)]

    def _shard_arenas(self, shard_id: int) -> tuple[ShmArena, ShmArena]:
        pair = self._arenas.get(shard_id)
        if pair is None:
            pair = (
                ShmArena(f"q{shard_id}"),
                ShmArena(f"r{shard_id}"),
            )
            self._arenas[shard_id] = pair
        return pair

    def seed(self, per_shard_seeds: list[np.ndarray]) -> None:
        """Build every shard engine remotely and apply its seed set."""
        futures: list[Future[int]] = [
            self._pool_for(shard_id).submit(
                _build_engine, self._spec, shard_id, seed_addrs
            )
            for shard_id, seed_addrs in enumerate(per_shard_seeds)
        ]
        for future in futures:
            future.result()

    def tick(self, payloads: list[TickPayload]) -> list[TickReply]:
        """One tick's routed batches out, per-shard replies back.

        Replies are collected in shard order, so the driver's merge is
        deterministic regardless of worker completion order.
        """
        self._ticks += 1
        if self._transport == "shmem":
            return self._tick_shmem(payloads)
        futures: list[Future[TickReply]] = []
        for shard_id, payload in enumerate(payloads):
            self._payload_bytes += _payload_nbytes(payload)
            futures.append(
                self._pool_for(shard_id).submit(
                    _run_tick, shard_id, payload
                )
            )
        replies = [future.result() for future in futures]
        for fresh, _ in replies:
            self._payload_bytes += fresh.nbytes
        # Arrays ride the pipe in pickle mode, so pipe ≈ payload.
        self._pipe_bytes = self._payload_bytes
        return replies

    def _tick_shmem(
        self, payloads: list[TickPayload]
    ) -> list[TickReply]:
        self._epoch += 1
        epoch = self._epoch
        fault = _shard_fault()
        futures: list[Future[int]] = []
        for shard_id, payload in enumerate(payloads):
            now, sources, targets, source_indices, loss_ok, immunize = (
                payload
            )
            request, reply = self._shard_arenas(shard_id)
            frames = [sources, targets, source_indices, loss_ok, immunize]
            # The reply's single frame can never exceed the tick's
            # target count, so the driver pre-sizes it here — workers
            # never own (and so never grow) a segment.
            reply.ensure(capacity_for([(len(targets), np.uint32)]))
            request.write(epoch, frames)
            self._payload_bytes += _payload_nbytes(payload)
            send_epoch = epoch
            if _fault_matches(fault, "garble-header", shard_id, epoch):
                self._garble_request_header(request)
            elif _fault_matches(fault, "stale-epoch", shard_id, epoch):
                send_epoch = epoch - 1
            control: ShmControl = (
                shard_id,
                now,
                send_epoch,
                request.name,
                reply.name,
            )
            self._pipe_bytes += len(pickle.dumps(control))
            futures.append(
                self._pool_for(shard_id).submit(_run_tick_shm, *control)
            )
        replies: list[TickReply] = []
        for shard_id, future in enumerate(futures):
            delivered = future.result()
            reply = self._arenas[shard_id][1]
            (fresh,) = reply.read(epoch)
            assert fresh is not None
            self._payload_bytes += fresh.nbytes
            replies.append((fresh, delivered))
        return replies

    @staticmethod
    def _garble_request_header(request: ShmArena) -> None:
        """Test hook: clobber the just-written message's magic."""
        segment = attach(request.name)
        try:
            segment.buf[0] = 0xFF
        finally:
            segment.close()

    def collect_sensors(self) -> list[SensorState]:
        """Every shard's sensor clones, in shard order."""
        futures: list[Future[SensorState]] = [
            self._pool_for(shard_id).submit(_collect_sensors, shard_id)
            for shard_id in range(self._num_shards)
        ]
        return [future.result() for future in futures]

    def stats(self) -> dict[str, int | str]:
        """Transport byte counters for benchmarks and tests.

        ``payload_bytes`` is the array volume moved per run in either
        transport; ``pipe_bytes`` is what actually crossed the
        executor's pickle pipe — the whole payload in pickle mode,
        only the control tuples in shmem mode.
        """
        return {
            "transport": self._transport,
            "ticks": self._ticks,
            "payload_bytes": self._payload_bytes,
            "pipe_bytes": self._pipe_bytes,
        }

    def close(self) -> None:
        """Tear down workers and unlink shared-memory segments.

        Idempotent; runs from the driver's ``finally``, the
        pool-failure path, context-manager exit, and ``__del__`` —
        whichever comes first.  ``wait=True`` so every executor's
        management thread has fully exited before the interpreter can
        reach the concurrent.futures atexit hook — a non-waiting
        shutdown races that hook against the wakeup-pipe close and
        spews ``Exception ignored`` noise at exit.  Pools are idle
        (every tick future already resolved) or broken here, so the
        join is prompt either way.  Arenas are unlinked *after* the
        workers exit so no worker can attach a name mid-unlink.
        """
        if self._closed:
            return
        self._closed = True
        for pool in self._pools:
            pool.shutdown(wait=True, cancel_futures=True)
        for request, reply in self._arenas.values():
            request.close()
            reply.close()
        self._arenas.clear()

    def __enter__(self) -> "ShardPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC-order dependent
        try:
            self.close()
        except Exception:  # noqa: RP007 — interpreter-teardown close; nothing left to tell
            pass
