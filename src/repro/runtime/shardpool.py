"""Process-pool execution of shard engines.

The sharded simulator's pool mode keeps each shard's engine resident
in a dedicated worker process across the whole run: shard state
(population slice, sensor clones, verdict tables) is built once from
the pickled :class:`~repro.sim.spec.SimulationSpec` and then receives
one routed probe batch per tick.  ``ProcessPoolExecutor`` does not pin
tasks to workers, so pinning is by construction — every pool here has
exactly one worker, and a shard always submits to the same pool
(shards may share a pool when there are more shards than ``workers``;
a single-worker pool executes its queue FIFO, so per-shard ordering
is preserved).

**Transports.**  The per-tick batches move one of three ways:

* ``"ring"`` (default): the pipelined transport.  Arrays stage in
  per-shard *double-buffered* shared-memory arenas
  (:class:`~repro.runtime.shmem.ShmDoubleBuffer`, buffer chosen by
  epoch parity), and the per-tick control message rides a persistent
  per-worker SPSC command ring (:mod:`repro.runtime.ring`) serviced
  by a resident worker pump — one ~100 B ring write plus one
  ``Event`` doorbell per shard-tick, no executor round trip.  The
  executor's ``submit`` path remains the fallback transport for
  engine build/seed, snapshots, sensor collection, and
  supervision-respawn replays (the pump is paused around them).
* ``"shmem"``: arrays stage in single-buffered arenas and a control
  tuple crosses the executor's pickle pipe via one ``submit`` per
  shard per tick.
* ``"pickle"``: arrays ride the executor pipe directly (the original
  transport, and the automatic fallback where POSIX shared memory is
  unavailable).

All transports are bitwise-identical by construction: the worker sees
the same arrays either way.  :meth:`ShardPool.stats` reports how many
bytes and round trips each path used, so benchmarks can show the
per-tick control traffic amortized.

**Pipelined dispatch.**  The pool's tick API is streamed:
:meth:`ShardPool.begin_tick`, then one :meth:`ShardPool.dispatch_shard`
per shard *as soon as its routed slice is ready*, then
:meth:`ShardPool.collect` (the classic :meth:`ShardPool.tick` wraps
the three).  A dispatched worker computes while the driver routes and
stages the remaining shards, and ``stats()['dispatch_overlap_s']``
accumulates that overlap window.  Dispatch order may interleave with
worker completion order, but :meth:`collect` settles replies in shard
order, so the driver's merge stays deterministic.  Driver code must
not consume RNG inside the overlap window (between the first
``dispatch_shard`` and ``collect`` of a tick) — the ``hotspots lint``
RP105 flow rule enforces this.

Failure philosophy: the pool is an optimization, never a semantic.
Without supervision, any pool-layer error — a dead worker, a truncated
or stale shared-memory message
(:class:`~repro.runtime.shmem.ShmProtocolError`), a garbled ring slot
(:class:`~repro.runtime.ring.RingError`), a segment that vanished
mid-tick — surfaces to the driver, which discards the pools and
re-runs the outbreak in-process from the original seed material —
bitwise the same result, just slower.

**Supervision.**  With ``supervise=True`` (the driver enables it when
the run is being checkpointed) the pool recovers *per slot* instead:
it retains the per-shard seed sets, the per-shard engine snapshots
from the most recent :meth:`ShardPool.snapshot` (taken at the
checkpoint cadence), and a replay buffer of every tick payload issued
since.  When a tick outcome fails — the worker died
(``BrokenProcessPool``), garbled its reply, or missed the bounded
``heartbeat`` — the pool terminates only the failed slot's executor,
respawns it (with fresh doorbells and, lazily, a fresh drained ring),
rebuilds each of its shards (seed → snapshot restore → payload
replay), and re-issues the current tick.  Replays ride the executor
fallback transport under *fresh* epochs and are RNG-free by
construction: payloads carry only pre-drawn arrays (the exchange
determinism contract), so replaying them consumes no driver
randomness and the recovered run is bitwise-identical.  The respawn
budget (``MAX_RESPAWNS``) bounds pathological loops; exhausting it
surfaces the failure, and the driver falls back to the serial re-run.

For fault-path tests, ``REPRO_SHARD_FAULT`` may hold a JSON object
``{"kind": ..., "shard": int, "epoch": int}`` with kind ``"kill"``
(worker hard-exits mid-tick), ``"garble-header"`` (the request
header's magic is clobbered after writing), ``"stale-epoch"`` (the
control message carries the previous epoch, simulating a reader racing
a segment resize), ``"garble-ring"`` (the just-pushed command slot's
kind is clobbered, killing the worker pump), or ``"stale-doorbell"``
(the command is published but the doorbell is never rung — the pump's
bounded poll self-heals, results unchanged).  The hook follows the
:mod:`repro.runtime.faults` environment-variable idiom so it works
under any process start method.  The mid-run faults of
:mod:`repro.runtime.faults` (``REPRO_MIDRUN_FAULT``) additionally let
a worker kill or hang itself when it receives the epoch belonging to
a given tick — in an undisturbed run tick ``N`` (0-based) is carried
by epoch ``N + 1`` in every transport, and recovery replays use fresh
epochs, so such a fault fires exactly once per run.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import pickle
import time
from concurrent.futures import Future, ProcessPoolExecutor
from concurrent.futures import TimeoutError as _FutureTimeout
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Optional, TypeVar, Union

import numpy as np

from repro.runtime.checkpoint import record_recovery
from repro.runtime.faults import midrun_fault_from_env
from repro.runtime.ring import (
    KIND_DONE,
    KIND_ERROR,
    KIND_STOP,
    KIND_TICK,
    SLOT_BYTES,
    RingMessage,
    SpscRing,
)
from repro.runtime.shmem import (
    ShmArena,
    ShmDoubleBuffer,
    ShmProtocolError,
    attach,
    capacity_for,
    read_frames,
    shared_memory_available,
    write_frames,
)

if TYPE_CHECKING:
    from multiprocessing.shared_memory import SharedMemory
    from multiprocessing.synchronize import Event as MpEvent

    from repro.runtime.perf import StageTimer
    from repro.sim.shard import ShardEngine
    from repro.sim.spec import SimulationSpec

_T = TypeVar("_T")

#: One tick's routed work for one shard: ``(now, sources, targets,
#: source_policy_indices, loss_ok, immunize)`` — the last three are
#: ``None`` when the run has no policy kernel / active loss / pending
#: patches.
TickPayload = tuple[
    float,
    np.ndarray,
    np.ndarray,
    Optional[np.ndarray],
    Optional[np.ndarray],
    Optional[np.ndarray],
]

#: A shard's tick reply: fresh infections (sorted-unique within the
#: shard interval) and the delivered-probe count.
TickReply = tuple[np.ndarray, int]

#: The shm transports' control message: ``(shard_id, now, epoch,
#: request_name, reply_name)`` — pickled per tick in ``"shmem"`` mode,
#: encoded into one ring slot in ``"ring"`` mode.
ShmControl = tuple[int, float, int, str, str]

#: End-of-run sensor state: the worker's sensor and grid clones.
SensorState = tuple[list[object], list[object]]

#: Environment variable carrying an injected shard-transport fault.
FAULT_ENV = "REPRO_SHARD_FAULT"

#: How many slot respawns one supervised pool will attempt before the
#: failure surfaces to the driver (which then degrades to serial).
MAX_RESPAWNS = 3

#: Command/reply ring capacity (slots).  Outstanding commands per
#: worker are bounded by its resident shard count; a full ring is
#: back-pressure (a bounded driver-side wait), not an error.
_RING_SLOTS = 8

#: The worker pump's doorbell poll cadence: an unsignaled doorbell
#: (a missed or deliberately withheld wake) costs at most this long.
_PUMP_POLL_S = 0.05

#: Worker-side segment-attachment cache ceiling; double-buffer name
#: alternation and growth renames would otherwise grow it unboundedly.
_SEGMENT_CACHE_MAX = 64

#: Engines resident in *this worker process*, keyed by shard id.
_ENGINES: dict[int, "ShardEngine"] = {}

#: Worker-side attachment cache, keyed by segment *name* — the ring
#: transport alternates names tick-to-tick (double buffering), so a
#: role-keyed cache would thrash close/attach every tick.
_SEGMENTS: dict[str, "SharedMemory"] = {}

#: This worker's ``(doorbell, reply_bell)`` pair, delivered through
#: the executor initializer (multiprocessing primitives cannot be
#: pickled through ``submit`` arguments, but ride process creation).
_BELLS: Optional[tuple["MpEvent", "MpEvent"]] = None


def _init_bells(doorbell: "MpEvent", reply_bell: "MpEvent") -> None:
    """Executor initializer: stash this worker's doorbell pair."""
    global _BELLS
    _BELLS = (doorbell, reply_bell)


def _shard_fault() -> Optional[dict[str, object]]:
    """The injected transport fault, if any (test hook)."""
    raw = os.environ.get(FAULT_ENV)
    if not raw:
        return None
    try:
        fault = json.loads(raw)
    except ValueError:  # pragma: no cover - malformed test config
        return None
    return fault if isinstance(fault, dict) else None


def _fault_matches(
    fault: Optional[dict[str, object]],
    kind: str,
    shard_id: int,
    epoch: int,
) -> bool:
    return (
        fault is not None
        and fault.get("kind") == kind
        and int(fault.get("shard", -1)) == shard_id
        and int(fault.get("epoch", -1)) == epoch
    )


def _apply_midrun_fault(shard_id: int, epoch: int) -> None:
    """Worker-side chaos hook: die or hang at a specific tick's epoch.

    An undisturbed run carries tick ``N`` (0-based) on epoch ``N + 1``
    in every transport; recovery replays re-issue work under *fresh*
    epochs, so a fault keyed to a tick fires exactly once per run and
    never re-fires during its own recovery.
    """
    fault = midrun_fault_from_env()
    if fault is None or fault.tick is None:
        return
    if fault.kind not in ("kill-worker", "hang-worker"):
        return
    if not fault.matches_shard(shard_id) or epoch != fault.tick + 1:
        return
    if fault.kind == "kill-worker":
        os._exit(86)
    time.sleep(fault.seconds)


def _build_engine(
    spec: "SimulationSpec", shard_id: int, seed_addrs: np.ndarray
) -> int:
    """Worker-side: construct and seed one shard engine."""
    from repro.sim.shard import ShardEngine

    engine = ShardEngine(spec, shard_id)
    engine.seed(seed_addrs)
    _ENGINES[shard_id] = engine
    return shard_id


def _snapshot_shard(shard_id: int) -> dict[str, Any]:
    """Worker-side: copy a resident engine's state (sensors included)."""
    return _ENGINES[shard_id].state_snapshot(include_sensors=True)


def _restore_shard(shard_id: int, snapshot: dict[str, Any]) -> int:
    """Worker-side: overwrite a resident engine's state."""
    _ENGINES[shard_id].state_restore(snapshot)
    return shard_id


def _run_tick(
    shard_id: int, payload: TickPayload, epoch: int = 0
) -> TickReply:
    """Worker-side: apply one pickled batch to a resident engine."""
    _apply_midrun_fault(shard_id, epoch)
    now, sources, targets, source_indices, loss_ok, immunize = payload
    engine = _ENGINES[shard_id]
    if immunize is not None:
        engine.immunize(immunize)
    return engine.process(now, sources, targets, source_indices, loss_ok)


def _attached(name: str) -> "SharedMemory":
    """Worker-side: the mapped segment for a name, cache-fresh.

    Name-keyed: the driver's growth and double-buffer renames simply
    land as new entries.  Above :data:`_SEGMENT_CACHE_MAX` entries the
    cache is flushed — stale mappings close (tolerating live loaned
    views, whose mapping simply outlives the cache entry) and the
    requested segment re-attaches.
    """
    cached = _SEGMENTS.get(name)
    if cached is not None:
        return cached
    if len(_SEGMENTS) >= _SEGMENT_CACHE_MAX:
        for stale in _SEGMENTS.values():
            try:
                stale.close()
            except BufferError:  # noqa: RP007 — a live loaned view pins the old mapping; it outlives the cache entry harmlessly
                pass
        _SEGMENTS.clear()
    segment = attach(name)
    _SEGMENTS[name] = segment
    return segment


def _run_tick_shm(
    shard_id: int,
    now: float,
    epoch: int,
    request_name: str,
    reply_name: str,
) -> int:
    """Worker-side: one tick through the shared-memory transport.

    Reads the routed batch zero-copy from the request segment, runs
    the resident engine, writes the fresh-infection frame into the
    (driver-pre-sized) reply segment, and returns only the delivered
    count — the reply arrays never touch the pickle pipe.  Serves
    both ``"shmem"`` (as the submitted callable) and ``"ring"`` (from
    the worker pump).
    """
    if _fault_matches(_shard_fault(), "kill", shard_id, epoch):
        os._exit(86)
    _apply_midrun_fault(shard_id, epoch)
    request = _attached(request_name)
    sources, targets, source_indices, loss_ok, immunize = read_frames(
        request.buf, epoch
    )
    assert sources is not None and targets is not None
    engine = _ENGINES[shard_id]
    if immunize is not None:
        engine.immunize(immunize)
    fresh, delivered = engine.process(
        now, sources, targets, source_indices, loss_ok
    )
    reply = _attached(reply_name)
    write_frames(reply.buf, epoch, [fresh])
    return delivered


def _ring_pump(command_name: str, reply_name: str) -> dict[str, int]:
    """Worker-side: drain the command ring until a STOP command.

    The pump *is* the ring transport's worker loop: it occupies the
    slot's single executor worker, pops commands (doorbell-gated with
    a bounded poll, so a missed wake self-heals within
    :data:`_PUMP_POLL_S`), runs each tick, and pushes a DONE or ERROR
    reply through the reply ring.  Engine failures become ERROR
    replies (the shard fails, the pump survives); ring-protocol
    corruption (:class:`~repro.runtime.ring.RingError`) propagates and
    kills the pump — the driver sees the dead future and fails the
    shard the same way it would a dead worker.  Returns worker-side
    counters for the driver to fold into :meth:`ShardPool.stats`.
    """
    assert _BELLS is not None
    doorbell, reply_bell = _BELLS
    command = SpscRing.attach(command_name)
    reply = SpscRing.attach(reply_name)
    handled = 0
    doorbell_timeouts = 0
    try:
        while True:
            message = command.try_pop()
            if message is None:
                if not doorbell.wait(timeout=_PUMP_POLL_S):
                    doorbell_timeouts += 1
                doorbell.clear()
                continue
            if message.kind == KIND_STOP:
                return {
                    "handled": handled,
                    "doorbell_timeouts": doorbell_timeouts,
                }
            try:
                delivered = _run_tick_shm(
                    message.shard,
                    message.now,
                    message.epoch,
                    message.text,
                    message.text2,
                )
            except Exception as error:
                outcome = RingMessage(
                    kind=KIND_ERROR,
                    shard=message.shard,
                    epoch=message.epoch,
                    text=f"{type(error).__name__}: {error}",
                )
            else:
                handled += 1
                outcome = RingMessage(
                    kind=KIND_DONE,
                    shard=message.shard,
                    epoch=message.epoch,
                    value=delivered,
                )
            while not reply.try_push(outcome):
                # The driver drains replies while waiting; a full
                # reply ring is a transient, not a deadlock.
                time.sleep(0.001)
            reply_bell.set()
    finally:
        command.close()
        reply.close()


def _collect_sensors(shard_id: int) -> SensorState:
    """Worker-side: hand the shard's sensor clones back for merging."""
    engine = _ENGINES[shard_id]
    return list(engine.sensors), list(engine.grids)


def _payload_nbytes(payload: TickPayload) -> int:
    """Array bytes one pickled payload would push through the pipe."""
    return sum(
        frame.nbytes
        for frame in payload[1:]
        if isinstance(frame, np.ndarray)
    )


def _copy_payload(payload: TickPayload) -> TickPayload:
    """A payload with owned arrays (the originals are arena loans)."""
    now = payload[0]
    frames = tuple(
        None if frame is None else np.array(frame, copy=True)
        for frame in payload[1:]
    )
    return (now,) + frames  # type: ignore[return-value]


def _terminate_executor(pool: ProcessPoolExecutor) -> bool:
    """Tear one slot's executor down even when its worker is hung.

    The single-worker variant of
    :meth:`repro.runtime.runner.TrialRunner._terminate_pool`:
    terminate, non-waiting shutdown, bounded join, then kill — so a
    worker stuck in an uninterruptible tick cannot hang recovery.
    Returns ``True`` when every worker is reaped and the executor's
    manager thread has exited; forking a replacement while the dead
    pool's threads still run risks deadlocking the children, so a
    ``False`` caller must not respawn (the driver degrades to the
    fork-free serial re-run instead).
    """
    workers = getattr(pool, "_processes", None)
    processes = list(workers.values()) if isinstance(workers, dict) else []
    for process in processes:
        try:
            process.terminate()
        except (OSError, ValueError):  # noqa: RP007 — already-dead worker
            pass
    pool.shutdown(wait=False, cancel_futures=True)
    deadline = time.monotonic() + 10.0
    for process in processes:
        try:
            process.join(
                timeout=min(1.0, max(0.0, deadline - time.monotonic()))
            )
            if process.is_alive():  # SIGTERM masked or worker wedged
                process.kill()
                process.join(
                    timeout=max(0.1, deadline - time.monotonic())
                )
        except (OSError, ValueError, AssertionError):  # noqa: RP007 — reaped elsewhere
            pass
    manager = getattr(pool, "_executor_manager_thread", None)
    if manager is not None and manager.is_alive():
        manager.join(timeout=max(0.1, deadline - time.monotonic()))
        if manager.is_alive():
            return False
    return not any(process.is_alive() for process in processes)


@dataclass
class _SlotChannel:
    """Driver-side state of one worker slot's ring transport."""

    command: SpscRing
    reply: SpscRing
    doorbell: "MpEvent"
    reply_bell: "MpEvent"
    #: The resident pump's future; ``None`` while paused (the slot's
    #: worker is then free for ``submit`` traffic).
    pump: Optional["Future[dict[str, int]]"] = None


@dataclass
class _Inflight:
    """One dispatched shard awaiting :meth:`ShardPool.collect`."""

    #: ``"ring"``, ``"shmem"``, ``"pickle"``, or ``"failed"``
    #: (dispatch itself failed; ``error`` carries the exception).
    kind: str
    epoch: int
    future: Optional["Future[Any]"] = None
    error: Optional[BaseException] = None


class ShardPool:
    """Dedicated single-worker pools hosting resident shard engines.

    Parameters
    ----------
    spec, num_shards, workers:
        As built by :class:`~repro.sim.shard.ShardedSimulator`.
    transport:
        ``"ring"``, ``"shmem"`` or ``"pickle"`` (see the module
        docstring).  The shared-memory transports silently fall back
        to pickle where ``multiprocessing.shared_memory`` is
        unavailable.
    heartbeat:
        Optional per-shard reply deadline in seconds; a worker that
        misses it counts as failed (hung).  ``None`` waits forever.
    supervise:
        Retain seed sets, cadence snapshots, and replay buffers so a
        failed slot can be respawned in place (see the module
        docstring).  Off by default: without checkpointing there is
        no cadence to bound the replay buffer.
    """

    def __init__(
        self,
        spec: "SimulationSpec",
        num_shards: int,
        workers: int,
        transport: str = "ring",
        heartbeat: Optional[float] = None,
        supervise: bool = False,
    ):
        if transport not in ("ring", "shmem", "pickle"):
            raise ValueError(
                f"ShardPool.transport: expected 'ring', 'shmem' or "
                f"'pickle', got {transport!r}"
            )
        if heartbeat is not None and heartbeat <= 0:
            raise ValueError(
                f"ShardPool.heartbeat must be positive, got {heartbeat}"
            )
        if transport != "pickle" and not shared_memory_available():
            transport = "pickle"  # pragma: no cover - platform gap
        self._spec = spec
        self._num_shards = num_shards
        self._transport = transport
        self._heartbeat = heartbeat
        self._supervise = supervise
        self._epoch = 0
        self._ticks = 0
        self._payload_bytes = 0
        self._pipe_bytes = 0
        self._ring_bytes = 0
        self._ring_round_trips = 0
        self._submit_round_trips = 0
        self._ring_backpressure_waits = 0
        self._doorbell_timeouts = 0
        self._dispatch_overlap_s = 0.0
        self._arenas: dict[int, tuple[ShmArena, ShmArena]] = {}
        self._dbuffers: dict[int, tuple[ShmDoubleBuffer, ShmDoubleBuffer]] = {}
        self._channels: dict[int, _SlotChannel] = {}
        self._ring_replies: dict[int, RingMessage] = {}
        self._pending: dict[int, _Inflight] = {}
        self._tick_payloads: dict[int, TickPayload] = {}
        self._tick_fault: Optional[dict[str, object]] = None
        self._first_dispatch: Optional[float] = None
        self._closed = False
        self._seeds: Optional[list[np.ndarray]] = None
        self._snapshots: Optional[list[dict[str, Any]]] = None
        self._replay: list[list[TickPayload]] = [
            [] for _ in range(num_shards)
        ]
        self._respawns = 0
        pool_count = max(1, min(workers, num_shards))
        self._bells: list[tuple["MpEvent", "MpEvent"]] = []
        if self._transport == "ring":
            self._bells = [
                (multiprocessing.Event(), multiprocessing.Event())
                for _ in range(pool_count)
            ]
            self._pools = [
                ProcessPoolExecutor(
                    max_workers=1,
                    initializer=_init_bells,
                    initargs=self._bells[slot],
                )
                for slot in range(pool_count)
            ]
        else:
            self._pools = [
                ProcessPoolExecutor(max_workers=1)
                for _ in range(pool_count)
            ]

    @property
    def transport(self) -> str:
        """The transport actually in use (after any fallback)."""
        return self._transport

    def _pool_for(self, shard_id: int) -> ProcessPoolExecutor:
        return self._pools[shard_id % len(self._pools)]

    def _submit(
        self,
        pool: ProcessPoolExecutor,
        fn: Callable[..., _T],
        /,
        *args: Any,
    ) -> "Future[_T]":
        """An executor submit, counted as one fallback round trip."""
        self._submit_round_trips += 1
        return pool.submit(fn, *args)

    def _shard_arenas(self, shard_id: int) -> tuple[ShmArena, ShmArena]:
        pair = self._arenas.get(shard_id)
        if pair is None:
            pair = (
                ShmArena(f"q{shard_id}"),
                ShmArena(f"r{shard_id}"),
            )
            self._arenas[shard_id] = pair
        return pair

    def _shard_dbuffers(
        self, shard_id: int
    ) -> tuple[ShmDoubleBuffer, ShmDoubleBuffer]:
        pair = self._dbuffers.get(shard_id)
        if pair is None:
            pair = (
                ShmDoubleBuffer(f"q{shard_id}"),
                ShmDoubleBuffer(f"r{shard_id}"),
            )
            self._dbuffers[shard_id] = pair
        return pair

    def seed(self, per_shard_seeds: list[np.ndarray]) -> None:
        """Build every shard engine remotely and apply its seed set."""
        futures: list[Future[int]] = [
            self._submit(
                self._pool_for(shard_id),
                _build_engine,
                self._spec,
                shard_id,
                seed_addrs,
            )
            for shard_id, seed_addrs in enumerate(per_shard_seeds)
        ]
        for future in futures:
            future.result()
        if self._supervise:
            self._seeds = [
                np.array(seed_addrs, dtype=np.uint32, copy=True)
                for seed_addrs in per_shard_seeds
            ]

    # -- the pipelined tick --------------------------------------------

    def begin_tick(self) -> None:
        """Open one tick: advance the epoch, reset dispatch state.

        The epoch advances once per tick in *every* transport (tick
        ``N`` rides epoch ``N + 1``), so mid-run faults, double-buffer
        parity, and replay accounting share one clock.
        """
        self._ticks += 1
        self._epoch += 1
        self._tick_fault = _shard_fault()
        self._pending = {}
        self._tick_payloads = {}
        self._first_dispatch = None

    def dispatch_shard(self, shard_id: int, payload: TickPayload) -> None:
        """Issue one shard's routed batch the moment it is staged.

        Never raises for a worker-side problem: a dispatch failure is
        recorded as that shard's outcome and settled by
        :meth:`collect`, so one dead worker cannot mask the health of
        the others.  Payload arrays may be arena loans the driver
        reuses for the *next* shard — every transport either copies
        them into shared memory synchronously (ring/shmem) or copies
        before the executor pickles them asynchronously (pickle).
        """
        epoch = self._epoch
        owned: Optional[TickPayload] = None
        if self._supervise:
            owned = _copy_payload(payload)
            self._tick_payloads[shard_id] = owned
        if self._first_dispatch is None:
            self._first_dispatch = time.monotonic()
        try:
            if self._transport == "ring":
                self._dispatch_ring(shard_id, payload, epoch)
            elif self._transport == "shmem":
                control = self._stage_request(
                    shard_id, payload, epoch, self._tick_fault
                )
                self._pipe_bytes += len(pickle.dumps(control))
                future = self._submit(
                    self._pool_for(shard_id), _run_tick_shm, *control
                )
                self._pending[shard_id] = _Inflight("shmem", epoch, future)
            else:
                if owned is None:
                    owned = _copy_payload(payload)
                self._payload_bytes += _payload_nbytes(owned)
                future = self._submit(
                    self._pool_for(shard_id), _run_tick, shard_id, owned, epoch
                )
                self._pending[shard_id] = _Inflight("pickle", epoch, future)
        except Exception as error:
            self._pending[shard_id] = _Inflight(
                "failed", epoch, error=error
            )

    def _dispatch_ring(
        self, shard_id: int, payload: TickPayload, epoch: int
    ) -> None:
        channel = self._ensure_channel(shard_id % len(self._pools))
        control = self._stage_request(
            shard_id, payload, epoch, self._tick_fault
        )
        _, now, send_epoch, request_name, reply_name = control
        self._ring_push(
            channel,
            RingMessage(
                kind=KIND_TICK,
                shard=shard_id,
                epoch=send_epoch,
                now=now,
                text=request_name,
                text2=reply_name,
            ),
        )
        if _fault_matches(self._tick_fault, "garble-ring", shard_id, epoch):
            channel.command.garble_last_push()
        if _fault_matches(
            self._tick_fault, "stale-doorbell", shard_id, epoch
        ):
            # Deliberately withhold the wake; the pump's bounded poll
            # finds the command within _PUMP_POLL_S — results are
            # identical, only latency (and the timeout counter) moves.
            pass
        else:
            channel.doorbell.set()
        self._pending[shard_id] = _Inflight("ring", epoch)

    def collect(self, timer: Optional["StageTimer"] = None) -> list[TickReply]:
        """Settle every dispatched shard, in shard order.

        Replies are collected in shard order regardless of worker
        completion order, so the driver's merge is deterministic.
        ``timer`` (the driver's ``--perf`` stage timer) splits the
        settle into ``wait`` (reply latency) and ``collect`` (reply
        arena reads) laps per shard.  Under supervision a failed shard
        is recovered in place (see :meth:`_recover`); otherwise the
        first failure raises and the driver degrades to serial.
        """
        if self._first_dispatch is not None:
            self._dispatch_overlap_s += (
                time.monotonic() - self._first_dispatch
            )
            self._first_dispatch = None
        outcomes: list[Union[TickReply, BaseException]] = []
        for shard_id in range(self._num_shards):
            inflight = self._pending.pop(shard_id, None)
            if inflight is None:
                outcomes.append(
                    RuntimeError(f"shard {shard_id} was never dispatched")
                )
                continue
            settled = self._await_reply(shard_id, inflight)
            if timer is not None:
                timer.lap("wait")
            outcomes.append(self._read_reply(shard_id, inflight, settled))
            if timer is not None:
                timer.lap("collect")
        if self._transport == "pickle":
            # Arrays ride the pipe in pickle mode, so pipe ≈ payload.
            self._pipe_bytes = self._payload_bytes
        failures = [
            index
            for index, outcome in enumerate(outcomes)
            if isinstance(outcome, BaseException)
        ]
        if failures:
            first = outcomes[failures[0]]
            assert isinstance(first, BaseException)
            if not self._supervise or self._seeds is None:
                raise first
            payloads = [
                self._tick_payloads[shard_id]
                for shard_id in range(self._num_shards)
            ]
            self._recover(payloads, outcomes, failures)
        if self._supervise:
            for shard_id in range(self._num_shards):
                self._replay[shard_id].append(
                    self._tick_payloads[shard_id]
                )
        self._tick_payloads = {}
        replies: list[TickReply] = []
        for outcome in outcomes:
            assert not isinstance(outcome, BaseException)
            replies.append(outcome)
        return replies

    def tick(self, payloads: list[TickPayload]) -> list[TickReply]:
        """One whole tick: routed batches out, per-shard replies back.

        The classic all-at-once entry point, now a thin wrapper over
        the streamed :meth:`begin_tick` / :meth:`dispatch_shard` /
        :meth:`collect` API.
        """
        self.begin_tick()
        for shard_id, payload in enumerate(payloads):
            self.dispatch_shard(shard_id, payload)
        return self.collect()

    def _await_reply(
        self, shard_id: int, inflight: _Inflight
    ) -> Union[int, TickReply, BaseException]:
        """Block until one shard's reply (or failure) is known."""
        if inflight.kind == "failed":
            assert inflight.error is not None
            return inflight.error
        if inflight.kind == "ring":
            return self._await_ring_reply(shard_id, inflight.epoch)
        assert inflight.future is not None
        return self._settle(inflight.future)

    def _read_reply(
        self,
        shard_id: int,
        inflight: _Inflight,
        settled: Union[int, TickReply, BaseException],
    ) -> Union[TickReply, BaseException]:
        """Turn a settled reply into a ``TickReply`` outcome."""
        if isinstance(settled, BaseException):
            return settled
        if inflight.kind == "pickle":
            assert isinstance(settled, tuple)
            self._payload_bytes += settled[0].nbytes
            return settled
        assert isinstance(settled, int)
        try:
            if inflight.kind == "ring":
                (fresh,) = self._dbuffers[shard_id][1].read(inflight.epoch)
            else:
                (fresh,) = self._arenas[shard_id][1].read(inflight.epoch)
        except Exception as error:
            return error
        assert fresh is not None
        self._payload_bytes += fresh.nbytes
        return (fresh, settled)

    # -- the ring transport --------------------------------------------

    def _ensure_channel(self, slot: int) -> _SlotChannel:
        """The slot's ring channel, with its pump running."""
        channel = self._channels.get(slot)
        if channel is None:
            doorbell, reply_bell = self._bells[slot]
            channel = _SlotChannel(
                command=SpscRing.create(f"c{slot}", _RING_SLOTS),
                reply=SpscRing.create(f"p{slot}", _RING_SLOTS),
                doorbell=doorbell,
                reply_bell=reply_bell,
            )
            self._channels[slot] = channel
        if channel.pump is None:
            channel.doorbell.clear()
            channel.reply_bell.clear()
            channel.pump = self._submit(
                self._pools[slot],
                _ring_pump,
                channel.command.name,
                channel.reply.name,
            )
        return channel

    def _ring_push(
        self, channel: _SlotChannel, message: RingMessage
    ) -> None:
        """Publish one command, waiting out a full ring (bounded).

        A full command ring is back-pressure from a busy worker: the
        driver re-rings the doorbell (the worker may have missed a
        wake) and retries until a slot frees, the pump dies, or the
        heartbeat deadline passes.
        """
        deadline = (
            None
            if self._heartbeat is None
            else time.monotonic() + self._heartbeat
        )
        while not channel.command.try_push(message):
            self._ring_backpressure_waits += 1
            channel.doorbell.set()
            pump = channel.pump
            if pump is not None and pump.done():
                error = pump.exception()
                raise error if error is not None else RuntimeError(
                    "ring pump exited while its command ring was full"
                )
            if deadline is not None and time.monotonic() > deadline:
                raise TimeoutError(
                    f"command ring stayed full for the "
                    f"{self._heartbeat:g}s heartbeat"
                )
            time.sleep(0.0005)
        self._ring_bytes += SLOT_BYTES

    def _drain_ring_replies(self, channel: _SlotChannel) -> None:
        """Move every published reply into the per-shard table."""
        while True:
            message = channel.reply.try_pop()
            if message is None:
                return
            self._ring_bytes += SLOT_BYTES
            self._ring_round_trips += 1
            self._ring_replies[message.shard] = message

    def _await_ring_reply(
        self, shard_id: int, epoch: int
    ) -> Union[int, BaseException]:
        """One shard's ring reply: delivered count or failure."""
        slot = shard_id % len(self._pools)
        channel = self._channels.get(slot)
        if channel is None:
            return RuntimeError(f"no ring channel for slot {slot}")
        deadline = (
            None
            if self._heartbeat is None
            else time.monotonic() + self._heartbeat
        )
        while True:
            pump = channel.pump
            pump_done = pump is not None and pump.done()
            try:
                self._drain_ring_replies(channel)
            except Exception as error:
                return error
            message = self._ring_replies.get(shard_id)
            if message is not None:
                if message.epoch < epoch:
                    # A superseded dispatch's reply; drop and keep
                    # waiting for the current epoch.
                    del self._ring_replies[shard_id]
                    continue
                del self._ring_replies[shard_id]
                if message.epoch > epoch:
                    return ShmProtocolError(
                        f"ring reply epoch {message.epoch} but tick "
                        f"expects {epoch}"
                    )
                if message.kind == KIND_ERROR:
                    return RuntimeError(
                        f"shard {shard_id} worker failed: {message.text}"
                    )
                return message.value
            if pump_done:
                assert pump is not None
                error = pump.exception()
                if error is not None:
                    return error
                return RuntimeError(
                    "ring pump exited before replying"
                )
            if deadline is not None and time.monotonic() > deadline:
                return TimeoutError(
                    f"shard worker gave no reply within the "
                    f"{self._heartbeat:g}s heartbeat"
                )
            channel.reply_bell.wait(timeout=0.005)
            channel.reply_bell.clear()

    def _stop_pump(
        self, slot: int, timeout: float, required: bool
    ) -> bool:
        """Pause one slot's pump (STOP command + drained future).

        Returns ``True`` when the slot's worker is idle again (pump
        returned, or already dead with its executor still usable);
        ``False`` when the pump is unresponsive — the caller must
        terminate the executor instead of submitting to it.  With
        ``required`` a hung pump raises (snapshot/sensor paths treat
        it like any pool failure).
        """
        channel = self._channels.get(slot)
        if channel is None or channel.pump is None:
            return True
        pump = channel.pump
        channel.pump = None
        if not pump.done():
            stop = RingMessage(
                kind=KIND_STOP, shard=0, epoch=self._epoch
            )
            push_deadline = time.monotonic() + min(5.0, timeout)
            while not channel.command.try_push(stop):
                channel.doorbell.set()
                if pump.done() or time.monotonic() > push_deadline:
                    break
                time.sleep(0.0005)
            else:
                self._ring_bytes += SLOT_BYTES
            channel.doorbell.set()
        try:
            stats = pump.result(timeout=timeout)
        except _FutureTimeout:
            if required:
                raise RuntimeError(
                    f"slot {slot} ring pump did not stop within "
                    f"{timeout:g}s"
                ) from None
            return False
        except Exception:
            # The pump died earlier (ring corruption, broken pool);
            # its failure already surfaced through the tick outcomes.
            return True
        self._doorbell_timeouts += int(stats.get("doorbell_timeouts", 0))
        return True

    def _pause_pumps(self) -> None:
        """Stop every pump so the executors can take submit traffic."""
        for slot in list(self._channels):
            self._stop_pump(slot, timeout=30.0, required=True)

    def _teardown_channel(self, slot: int) -> None:
        """Drop a slot's rings (respawn path: the next tick rebuilds
        them fresh and drained, under new doorbells)."""
        channel = self._channels.pop(slot, None)
        if channel is None:
            return
        channel.command.close()
        channel.reply.close()
        for shard_id in list(self._ring_replies):
            if shard_id % len(self._pools) == slot:
                del self._ring_replies[shard_id]

    def _stage_request(
        self,
        shard_id: int,
        payload: TickPayload,
        epoch: int,
        fault: Optional[dict[str, object]],
    ) -> ShmControl:
        """Write one shard's batch into its request arena.

        The ring transport stages into the epoch-parity buffer of the
        shard's double-buffered arenas, so staging tick ``N + 1``
        never disturbs tick ``N``'s still-pinned messages; the shmem
        transport keeps its single-buffer pair.
        """
        now, sources, targets, source_indices, loss_ok, immunize = payload
        if self._transport == "ring":
            request_db, reply_db = self._shard_dbuffers(shard_id)
            request = request_db.arena(epoch)
            reply = reply_db.arena(epoch)
        else:
            request, reply = self._shard_arenas(shard_id)
        frames = [sources, targets, source_indices, loss_ok, immunize]
        # The reply's single frame can never exceed the tick's
        # target count, so the driver pre-sizes it here — workers
        # never own (and so never grow) a segment.
        reply.ensure(capacity_for([(len(targets), np.uint32)]))
        request.write(epoch, frames)
        self._payload_bytes += _payload_nbytes(payload)
        send_epoch = epoch
        if _fault_matches(fault, "garble-header", shard_id, epoch):
            self._garble_request_header(request)
        elif _fault_matches(fault, "stale-epoch", shard_id, epoch):
            send_epoch = epoch - 1
        return (shard_id, now, send_epoch, request.name, reply.name)

    def _settle(self, future: "Future[Any]") -> Any:
        """A future's result, or the exception that failed it.

        With a heartbeat, a worker that gives no reply in time counts
        as hung: the timeout becomes the failure outcome and recovery
        replaces the (still wedged) worker rather than waiting on it.
        """
        try:
            if self._heartbeat is not None:
                return future.result(timeout=self._heartbeat)
            return future.result()
        except _FutureTimeout:
            return TimeoutError(
                f"shard worker gave no reply within the "
                f"{self._heartbeat:g}s heartbeat"
            )
        except Exception as error:
            return error

    # -- supervision ---------------------------------------------------

    def _recover(
        self,
        payloads: list[TickPayload],
        outcomes: list[Union[TickReply, BaseException]],
        failures: list[int],
    ) -> None:
        """Respawn every failed slot and re-run the current tick on it.

        A dead worker takes down *all* engines resident in its slot,
        so recovery is per slot: terminate the executor, fork a fresh
        one, rebuild each of its shards (seed → latest snapshot →
        replay of the buffered payloads under fresh epochs), then
        re-issue the failed tick.  Anything that goes wrong here —
        budget exhausted, teardown incomplete, replay failure —
        raises, and the driver falls back to the serial re-run.
        """
        assert self._seeds is not None
        slots = sorted(
            {shard_id % len(self._pools) for shard_id in failures}
        )
        first_error = outcomes[failures[0]]
        for slot in slots:
            self._respawns += 1
            if self._respawns > MAX_RESPAWNS:
                raise RuntimeError(
                    f"shard pool respawn budget ({MAX_RESPAWNS}) "
                    f"exhausted; last failure: {first_error}"
                )
            reason = next(
                str(outcomes[index]) or type(outcomes[index]).__name__
                for index in failures
                if index % len(self._pools) == slot
            )
            self._respawn_slot(slot, payloads, outcomes, reason)

    def _respawn_slot(
        self,
        slot: int,
        payloads: list[TickPayload],
        outcomes: list[Union[TickReply, BaseException]],
        reason: str,
    ) -> None:
        assert self._seeds is not None
        self._teardown_channel(slot)
        if not _terminate_executor(self._pools[slot]):
            raise RuntimeError(
                f"slot {slot} teardown did not complete; forking a "
                "replacement worker would risk a deadlock"
            )
        if self._transport == "ring":
            self._bells[slot] = (
                multiprocessing.Event(),
                multiprocessing.Event(),
            )
            self._pools[slot] = ProcessPoolExecutor(
                max_workers=1,
                initializer=_init_bells,
                initargs=self._bells[slot],
            )
        else:
            self._pools[slot] = ProcessPoolExecutor(max_workers=1)
        pool = self._pools[slot]
        for shard_id in range(self._num_shards):
            if shard_id % len(self._pools) != slot:
                continue
            self._submit(
                pool, _build_engine, self._spec, shard_id,
                self._seeds[shard_id],
            ).result()
            if self._snapshots is not None:
                self._submit(
                    pool, _restore_shard, shard_id,
                    self._snapshots[shard_id],
                ).result()
            replayed = 0
            for payload in self._replay[shard_id]:
                self._replay_payload(pool, shard_id, payload)
                replayed += 1
            outcomes[shard_id] = self._replay_payload(
                pool, shard_id, payloads[shard_id]
            )
            record_recovery(
                "worker-respawn",
                shard=shard_id,
                slot=slot,
                reason=reason,
                replayed_ticks=replayed,
                tick=self._ticks - 1,
            )

    def _replay_payload(
        self,
        pool: ProcessPoolExecutor,
        shard_id: int,
        payload: TickPayload,
    ) -> TickReply:
        """Re-run one buffered payload on a freshly respawned shard.

        Replays consume no driver RNG (payloads carry only pre-drawn
        arrays) and use fresh epochs, so a tick-keyed fault cannot
        re-fire during its own recovery.  The ring transport replays
        through the executor fallback (no pump exists on a fresh
        slot yet); the next regular tick rebuilds its ring.
        """
        self._epoch += 1
        epoch = self._epoch
        if self._transport == "shmem":
            control = self._stage_request(shard_id, payload, epoch, None)
            self._pipe_bytes += len(pickle.dumps(control))
            settled = self._settle(
                self._submit(pool, _run_tick_shm, *control)
            )
            if isinstance(settled, BaseException):
                raise settled
            (fresh,) = self._arenas[shard_id][1].read(epoch)
            assert fresh is not None
            return (fresh, settled)
        self._payload_bytes += _payload_nbytes(payload)
        settled = self._settle(
            self._submit(pool, _run_tick, shard_id, payload, epoch)
        )
        if isinstance(settled, BaseException):
            raise settled
        return settled  # type: ignore[no-any-return]

    def snapshot(self) -> list[dict[str, Any]]:
        """Every shard's state (sensor clones included), in shard order.

        Under supervision the states become the new recovery baseline
        and the replay buffer resets — the checkpoint cadence is what
        bounds replay memory.  Ring pumps pause first (the slot's
        single worker must be free to take the submit), and restart
        lazily on the next tick.
        """
        self._pause_pumps()
        futures = [
            self._submit(
                self._pool_for(shard_id), _snapshot_shard, shard_id
            )
            for shard_id in range(self._num_shards)
        ]
        states = [future.result() for future in futures]
        if self._supervise:
            self._snapshots = states
            self._replay = [[] for _ in range(self._num_shards)]
        return states

    def restore(self, states: list[dict[str, Any]]) -> None:
        """Overwrite every shard's state (a checkpoint-resume start)."""
        self._pause_pumps()
        futures = [
            self._submit(
                self._pool_for(shard_id), _restore_shard, shard_id, state
            )
            for shard_id, state in enumerate(states)
        ]
        for future in futures:
            future.result()
        if self._supervise:
            self._snapshots = list(states)
            self._replay = [[] for _ in range(self._num_shards)]

    @staticmethod
    def _garble_request_header(request: ShmArena) -> None:
        """Test hook: clobber the just-written message's magic."""
        segment = attach(request.name)
        try:
            segment.buf[0] = 0xFF
        finally:
            segment.close()

    def collect_sensors(self) -> list[SensorState]:
        """Every shard's sensor clones, in shard order."""
        self._pause_pumps()
        futures: list[Future[SensorState]] = [
            self._submit(
                self._pool_for(shard_id), _collect_sensors, shard_id
            )
            for shard_id in range(self._num_shards)
        ]
        return [future.result() for future in futures]

    def stats(self) -> dict[str, int | float | str]:
        """Transport counters for benchmarks and tests.

        ``payload_bytes`` is the array volume moved per run in any
        transport; ``pipe_bytes`` is what the *tick path* pushed
        through the executor's pickle pipe — the whole payload in
        pickle mode, per-tick control tuples in shmem mode, zero in
        ring mode (tick control rides the rings; the executor carries
        only build/seed/snapshot/sensor/replay calls, visible as
        ``submit_round_trips``).
        ``ring_bytes``/``ring_round_trips`` count the command-ring
        path; ``submit_round_trips`` counts every executor submit, so
        ring mode's per-tick control cost is visible as
        ``ring_round_trips`` growing with ``ticks × shards`` while
        ``submit_round_trips`` stays O(shards).
        ``dispatch_overlap_s`` accumulates the per-tick window between
        the first shard dispatch and collect — driver staging time
        that worker compute overlapped.
        """
        return {
            "transport": self._transport,
            "ticks": self._ticks,
            "payload_bytes": self._payload_bytes,
            "pipe_bytes": self._pipe_bytes,
            "ring_bytes": self._ring_bytes,
            "ring_round_trips": self._ring_round_trips,
            "submit_round_trips": self._submit_round_trips,
            "ring_backpressure_waits": self._ring_backpressure_waits,
            "doorbell_timeouts": self._doorbell_timeouts,
            "dispatch_overlap_s": self._dispatch_overlap_s,
        }

    def close(self) -> None:
        """Tear down workers, rings, and shared-memory segments.

        Idempotent; runs from the driver's ``finally``, the
        pool-failure path, context-manager exit, and ``__del__`` —
        whichever comes first.  Ring pumps are stopped first (a pump
        that won't stop means a wedged worker, which is terminated the
        hard way) so the executors are idle; then ``wait=True``
        shutdown so every executor's management thread has fully
        exited before the interpreter can reach the concurrent.futures
        atexit hook.  Segments are unlinked *after* the workers exit
        so no worker can attach a name mid-unlink.
        """
        if self._closed:
            return
        self._closed = True
        wedged: list[int] = []
        for slot in list(self._channels):
            try:
                stopped = self._stop_pump(slot, timeout=5.0, required=False)
            except Exception:  # noqa: RP007 — teardown-path stop; the terminate below is the fallback
                stopped = False
            if not stopped:
                wedged.append(slot)
        for slot in wedged:
            _terminate_executor(self._pools[slot])
        for pool in self._pools:
            pool.shutdown(wait=True, cancel_futures=True)
        for channel in self._channels.values():
            channel.command.close()
            channel.reply.close()
        self._channels.clear()
        for request, reply in self._arenas.values():
            request.close()
            reply.close()
        self._arenas.clear()
        for request_db, reply_db in self._dbuffers.values():
            request_db.close()
            reply_db.close()
        self._dbuffers.clear()

    def __enter__(self) -> "ShardPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC-order dependent
        try:
            self.close()
        except Exception:  # noqa: RP007 — interpreter-teardown close; nothing left to tell
            pass
