"""Process-pool execution of shard engines.

The sharded simulator's pool mode keeps each shard's engine resident
in a dedicated worker process across the whole run: shard state
(population slice, sensor clones, verdict tables) is built once from
the pickled :class:`~repro.sim.spec.SimulationSpec` and then receives
one routed probe batch per tick.  ``ProcessPoolExecutor`` does not pin
tasks to workers, so pinning is by construction — every pool here has
exactly one worker, and a shard always submits to the same pool
(shards may share a pool when there are more shards than ``workers``;
a single-worker pool executes its queue FIFO, so per-shard ordering
is preserved).

**Transports.**  The per-tick batches move one of two ways:

* ``"shmem"`` (default): the driver stages each shard's arrays in
  that shard's shared-memory *request* arena
  (:mod:`repro.runtime.shmem`), the worker maps the segment and reads
  them zero-copy, and the fresh-infection reply returns through a
  *reply* arena.  Only a tiny control tuple — shard id, tick time,
  epoch, segment names — crosses the executor's pickle pipe.
* ``"pickle"``: arrays ride the executor pipe directly (the original
  transport, and the automatic fallback where POSIX shared memory is
  unavailable).

Both transports are bitwise-identical by construction: the worker sees
the same arrays either way.  :meth:`ShardPool.stats` reports how many
bytes each path moved, so benchmarks can show the pipe traffic shrink.

Failure philosophy: the pool is an optimization, never a semantic.
Without supervision, any pool-layer error — a dead worker, a truncated
or stale shared-memory message
(:class:`~repro.runtime.shmem.ShmProtocolError`), a segment that
vanished mid-tick — surfaces to the driver, which discards the pools
and re-runs the outbreak in-process from the original seed material —
bitwise the same result, just slower.

**Supervision.**  With ``supervise=True`` (the driver enables it when
the run is being checkpointed) the pool recovers *per slot* instead:
it retains the per-shard seed sets, the per-shard engine snapshots
from the most recent :meth:`ShardPool.snapshot` (taken at the
checkpoint cadence), and a replay buffer of every tick payload issued
since.  When a tick outcome fails — the worker died
(``BrokenProcessPool``), garbled its reply, or missed the bounded
``heartbeat`` — the pool terminates only the failed slot's executor,
respawns it, rebuilds each of its shards (seed → snapshot restore →
payload replay), and re-issues the current tick.  Replays are
RNG-free by construction: payloads carry only pre-drawn arrays (the
exchange determinism contract), so replaying them consumes no driver
randomness and the recovered run is bitwise-identical.  The respawn
budget (``MAX_RESPAWNS``) bounds pathological loops; exhausting it
surfaces the failure, and the driver falls back to the serial re-run.

For fault-path tests, ``REPRO_SHARD_FAULT`` may hold a JSON object
``{"kind": ..., "shard": int, "epoch": int}`` with kind ``"kill"``
(worker hard-exits mid-tick), ``"garble-header"`` (the request
header's magic is clobbered after writing), or ``"stale-epoch"`` (the
control message carries the previous epoch, simulating a reader racing
a segment resize).  The hook follows the
:mod:`repro.runtime.faults` environment-variable idiom so it works
under any process start method.  The mid-run faults of
:mod:`repro.runtime.faults` (``REPRO_MIDRUN_FAULT``) additionally let
a worker kill or hang itself when it receives the epoch belonging to
a given tick — in an undisturbed run tick ``N`` (0-based) is carried
by epoch ``N + 1``, and recovery replays use fresh epochs, so such a
fault fires exactly once per run.
"""

from __future__ import annotations

import json
import os
import pickle
import time
from concurrent.futures import Future, ProcessPoolExecutor
from concurrent.futures import TimeoutError as _FutureTimeout
from typing import TYPE_CHECKING, Any, Optional, Union

import numpy as np

from repro.runtime.checkpoint import record_recovery
from repro.runtime.faults import midrun_fault_from_env
from repro.runtime.shmem import (
    ShmArena,
    attach,
    capacity_for,
    read_frames,
    shared_memory_available,
    write_frames,
)

if TYPE_CHECKING:
    from multiprocessing.shared_memory import SharedMemory

    from repro.sim.shard import ShardEngine
    from repro.sim.spec import SimulationSpec

#: One tick's routed work for one shard: ``(now, sources, targets,
#: source_policy_indices, loss_ok, immunize)`` — the last three are
#: ``None`` when the run has no policy kernel / active loss / pending
#: patches.
TickPayload = tuple[
    float,
    np.ndarray,
    np.ndarray,
    Optional[np.ndarray],
    Optional[np.ndarray],
    Optional[np.ndarray],
]

#: A shard's tick reply: fresh infections (sorted-unique within the
#: shard interval) and the delivered-probe count.
TickReply = tuple[np.ndarray, int]

#: The shmem transport's control message: ``(shard_id, now, epoch,
#: request_name, reply_name)`` — the only per-tick pickle traffic.
ShmControl = tuple[int, float, int, str, str]

#: End-of-run sensor state: the worker's sensor and grid clones.
SensorState = tuple[list[object], list[object]]

#: Environment variable carrying an injected shard-transport fault.
FAULT_ENV = "REPRO_SHARD_FAULT"

#: How many slot respawns one supervised pool will attempt before the
#: failure surfaces to the driver (which then degrades to serial).
MAX_RESPAWNS = 3

#: Engines resident in *this worker process*, keyed by shard id.
_ENGINES: dict[int, "ShardEngine"] = {}

#: Worker-side attachment cache, keyed by ``(shard_id, role)``; an
#: entry is replaced (and the old mapping closed) when the driver
#: grows a segment under a new name.
_SEGMENTS: dict[tuple[int, str], "SharedMemory"] = {}


def _shard_fault() -> Optional[dict[str, object]]:
    """The injected transport fault, if any (test hook)."""
    raw = os.environ.get(FAULT_ENV)
    if not raw:
        return None
    try:
        fault = json.loads(raw)
    except ValueError:  # pragma: no cover - malformed test config
        return None
    return fault if isinstance(fault, dict) else None


def _fault_matches(
    fault: Optional[dict[str, object]],
    kind: str,
    shard_id: int,
    epoch: int,
) -> bool:
    return (
        fault is not None
        and fault.get("kind") == kind
        and int(fault.get("shard", -1)) == shard_id
        and int(fault.get("epoch", -1)) == epoch
    )


def _apply_midrun_fault(shard_id: int, epoch: int) -> None:
    """Worker-side chaos hook: die or hang at a specific tick's epoch.

    An undisturbed run carries tick ``N`` (0-based) on epoch ``N + 1``
    in both transports; recovery replays re-issue work under *fresh*
    epochs, so a fault keyed to a tick fires exactly once per run and
    never re-fires during its own recovery.
    """
    fault = midrun_fault_from_env()
    if fault is None or fault.tick is None:
        return
    if fault.kind not in ("kill-worker", "hang-worker"):
        return
    if not fault.matches_shard(shard_id) or epoch != fault.tick + 1:
        return
    if fault.kind == "kill-worker":
        os._exit(86)
    time.sleep(fault.seconds)


def _build_engine(
    spec: "SimulationSpec", shard_id: int, seed_addrs: np.ndarray
) -> int:
    """Worker-side: construct and seed one shard engine."""
    from repro.sim.shard import ShardEngine

    engine = ShardEngine(spec, shard_id)
    engine.seed(seed_addrs)
    _ENGINES[shard_id] = engine
    return shard_id


def _snapshot_shard(shard_id: int) -> dict[str, Any]:
    """Worker-side: copy a resident engine's state (sensors included)."""
    return _ENGINES[shard_id].state_snapshot(include_sensors=True)


def _restore_shard(shard_id: int, snapshot: dict[str, Any]) -> int:
    """Worker-side: overwrite a resident engine's state."""
    _ENGINES[shard_id].state_restore(snapshot)
    return shard_id


def _run_tick(
    shard_id: int, payload: TickPayload, epoch: int = 0
) -> TickReply:
    """Worker-side: apply one pickled batch to a resident engine."""
    _apply_midrun_fault(shard_id, epoch)
    now, sources, targets, source_indices, loss_ok, immunize = payload
    engine = _ENGINES[shard_id]
    if immunize is not None:
        engine.immunize(immunize)
    return engine.process(now, sources, targets, source_indices, loss_ok)


def _attached(shard_id: int, role: str, name: str) -> "SharedMemory":
    """Worker-side: the mapped segment for a shard role, cache-fresh.

    When the driver grew the segment (new name), the stale mapping is
    closed — tolerating live loaned views, whose mapping simply
    outlives the cache entry — and the new one attached.
    """
    key = (shard_id, role)
    cached = _SEGMENTS.get(key)
    if cached is not None and cached.name == name:
        return cached
    if cached is not None:
        try:
            cached.close()
        except BufferError:  # noqa: RP007 — a live loaned view pins the old mapping; it outlives the cache entry harmlessly
            pass
    segment = attach(name)
    _SEGMENTS[key] = segment
    return segment


def _run_tick_shm(
    shard_id: int,
    now: float,
    epoch: int,
    request_name: str,
    reply_name: str,
) -> int:
    """Worker-side: one tick through the shared-memory transport.

    Reads the routed batch zero-copy from the request segment, runs
    the resident engine, writes the fresh-infection frame into the
    (driver-pre-sized) reply segment, and returns only the delivered
    count — the reply arrays never touch the pickle pipe.
    """
    if _fault_matches(_shard_fault(), "kill", shard_id, epoch):
        os._exit(86)
    _apply_midrun_fault(shard_id, epoch)
    request = _attached(shard_id, "request", request_name)
    sources, targets, source_indices, loss_ok, immunize = read_frames(
        request.buf, epoch
    )
    assert sources is not None and targets is not None
    engine = _ENGINES[shard_id]
    if immunize is not None:
        engine.immunize(immunize)
    fresh, delivered = engine.process(
        now, sources, targets, source_indices, loss_ok
    )
    reply = _attached(shard_id, "reply", reply_name)
    write_frames(reply.buf, epoch, [fresh])
    return delivered


def _collect_sensors(shard_id: int) -> SensorState:
    """Worker-side: hand the shard's sensor clones back for merging."""
    engine = _ENGINES[shard_id]
    return list(engine.sensors), list(engine.grids)


def _payload_nbytes(payload: TickPayload) -> int:
    """Array bytes one pickled payload would push through the pipe."""
    return sum(
        frame.nbytes
        for frame in payload[1:]
        if isinstance(frame, np.ndarray)
    )


def _copy_payload(payload: TickPayload) -> TickPayload:
    """A payload with owned arrays (the originals are arena loans)."""
    now = payload[0]
    frames = tuple(
        None if frame is None else np.array(frame, copy=True)
        for frame in payload[1:]
    )
    return (now,) + frames  # type: ignore[return-value]


def _terminate_executor(pool: ProcessPoolExecutor) -> bool:
    """Tear one slot's executor down even when its worker is hung.

    The single-worker variant of
    :meth:`repro.runtime.runner.TrialRunner._terminate_pool`:
    terminate, non-waiting shutdown, bounded join, then kill — so a
    worker stuck in an uninterruptible tick cannot hang recovery.
    Returns ``True`` when every worker is reaped and the executor's
    manager thread has exited; forking a replacement while the dead
    pool's threads still run risks deadlocking the children, so a
    ``False`` caller must not respawn (the driver degrades to the
    fork-free serial re-run instead).
    """
    workers = getattr(pool, "_processes", None)
    processes = list(workers.values()) if isinstance(workers, dict) else []
    for process in processes:
        try:
            process.terminate()
        except (OSError, ValueError):  # noqa: RP007 — already-dead worker
            pass
    pool.shutdown(wait=False, cancel_futures=True)
    deadline = time.monotonic() + 10.0
    for process in processes:
        try:
            process.join(
                timeout=min(1.0, max(0.0, deadline - time.monotonic()))
            )
            if process.is_alive():  # SIGTERM masked or worker wedged
                process.kill()
                process.join(
                    timeout=max(0.1, deadline - time.monotonic())
                )
        except (OSError, ValueError, AssertionError):  # noqa: RP007 — reaped elsewhere
            pass
    manager = getattr(pool, "_executor_manager_thread", None)
    if manager is not None and manager.is_alive():
        manager.join(timeout=max(0.1, deadline - time.monotonic()))
        if manager.is_alive():
            return False
    return not any(process.is_alive() for process in processes)


class ShardPool:
    """Dedicated single-worker pools hosting resident shard engines.

    Parameters
    ----------
    spec, num_shards, workers:
        As built by :class:`~repro.sim.shard.ShardedSimulator`.
    transport:
        ``"shmem"`` or ``"pickle"`` (see the module docstring).  The
        shmem transport silently falls back to pickle where
        ``multiprocessing.shared_memory`` is unavailable.
    heartbeat:
        Optional per-shard reply deadline in seconds; a worker that
        misses it counts as failed (hung).  ``None`` waits forever.
    supervise:
        Retain seed sets, cadence snapshots, and replay buffers so a
        failed slot can be respawned in place (see the module
        docstring).  Off by default: without checkpointing there is
        no cadence to bound the replay buffer.
    """

    def __init__(
        self,
        spec: "SimulationSpec",
        num_shards: int,
        workers: int,
        transport: str = "shmem",
        heartbeat: Optional[float] = None,
        supervise: bool = False,
    ):
        if transport not in ("shmem", "pickle"):
            raise ValueError(
                f"ShardPool.transport: expected 'shmem' or 'pickle', "
                f"got {transport!r}"
            )
        if heartbeat is not None and heartbeat <= 0:
            raise ValueError(
                f"ShardPool.heartbeat must be positive, got {heartbeat}"
            )
        if transport == "shmem" and not shared_memory_available():
            transport = "pickle"  # pragma: no cover - platform gap
        self._spec = spec
        self._num_shards = num_shards
        self._transport = transport
        self._heartbeat = heartbeat
        self._supervise = supervise
        self._epoch = 0
        self._ticks = 0
        self._payload_bytes = 0
        self._pipe_bytes = 0
        self._arenas: dict[int, tuple[ShmArena, ShmArena]] = {}
        self._closed = False
        self._seeds: Optional[list[np.ndarray]] = None
        self._snapshots: Optional[list[dict[str, Any]]] = None
        self._replay: list[list[TickPayload]] = [
            [] for _ in range(num_shards)
        ]
        self._respawns = 0
        pool_count = max(1, min(workers, num_shards))
        self._pools = [
            ProcessPoolExecutor(max_workers=1) for _ in range(pool_count)
        ]

    @property
    def transport(self) -> str:
        """The transport actually in use (after any fallback)."""
        return self._transport

    def _pool_for(self, shard_id: int) -> ProcessPoolExecutor:
        return self._pools[shard_id % len(self._pools)]

    def _shard_arenas(self, shard_id: int) -> tuple[ShmArena, ShmArena]:
        pair = self._arenas.get(shard_id)
        if pair is None:
            pair = (
                ShmArena(f"q{shard_id}"),
                ShmArena(f"r{shard_id}"),
            )
            self._arenas[shard_id] = pair
        return pair

    def seed(self, per_shard_seeds: list[np.ndarray]) -> None:
        """Build every shard engine remotely and apply its seed set."""
        futures: list[Future[int]] = [
            self._pool_for(shard_id).submit(
                _build_engine, self._spec, shard_id, seed_addrs
            )
            for shard_id, seed_addrs in enumerate(per_shard_seeds)
        ]
        for future in futures:
            future.result()
        if self._supervise:
            self._seeds = [
                np.array(seed_addrs, dtype=np.uint32, copy=True)
                for seed_addrs in per_shard_seeds
            ]

    def tick(self, payloads: list[TickPayload]) -> list[TickReply]:
        """One tick's routed batches out, per-shard replies back.

        Replies are collected in shard order, so the driver's merge is
        deterministic regardless of worker completion order.  The
        epoch advances once per tick in *both* transports (tick ``N``
        rides epoch ``N + 1``), so mid-run faults and replay
        accounting share one clock.  Under supervision a failed shard
        is recovered in place (see :meth:`_recover`); otherwise the
        first failure raises and the driver degrades to serial.
        """
        self._ticks += 1
        self._epoch += 1
        outcomes = self._dispatch(payloads, self._epoch)
        failures = [
            index
            for index, outcome in enumerate(outcomes)
            if isinstance(outcome, BaseException)
        ]
        if failures:
            first = outcomes[failures[0]]
            assert isinstance(first, BaseException)
            if not self._supervise or self._seeds is None:
                raise first
            self._recover(payloads, outcomes, failures)
        if self._supervise:
            for shard_id, payload in enumerate(payloads):
                self._replay[shard_id].append(_copy_payload(payload))
        replies: list[TickReply] = []
        for outcome in outcomes:
            assert not isinstance(outcome, BaseException)
            replies.append(outcome)
        return replies

    def _dispatch(
        self, payloads: list[TickPayload], epoch: int
    ) -> list[Union[TickReply, BaseException]]:
        """Issue one tick to every shard; failures become outcomes.

        A failed shard yields its exception instead of a reply, so
        one dead worker cannot mask the health of the others.
        """
        if self._transport == "shmem":
            return self._dispatch_shmem(payloads, epoch)
        futures: list[Future[TickReply]] = []
        for shard_id, payload in enumerate(payloads):
            self._payload_bytes += _payload_nbytes(payload)
            futures.append(
                self._pool_for(shard_id).submit(
                    _run_tick, shard_id, payload, epoch
                )
            )
        outcomes: list[Union[TickReply, BaseException]] = []
        for future in futures:
            settled = self._settle(future)
            if not isinstance(settled, BaseException):
                self._payload_bytes += settled[0].nbytes
            outcomes.append(settled)
        # Arrays ride the pipe in pickle mode, so pipe ≈ payload.
        self._pipe_bytes = self._payload_bytes
        return outcomes

    def _dispatch_shmem(
        self, payloads: list[TickPayload], epoch: int
    ) -> list[Union[TickReply, BaseException]]:
        fault = _shard_fault()
        futures: list[Future[int]] = []
        for shard_id, payload in enumerate(payloads):
            control = self._stage_request(shard_id, payload, epoch, fault)
            futures.append(
                self._pool_for(shard_id).submit(_run_tick_shm, *control)
            )
        outcomes: list[Union[TickReply, BaseException]] = []
        for shard_id, future in enumerate(futures):
            settled: Union[int, BaseException] = self._settle(future)
            if isinstance(settled, BaseException):
                outcomes.append(settled)
                continue
            try:
                (fresh,) = self._arenas[shard_id][1].read(epoch)
            except Exception as error:
                outcomes.append(error)
                continue
            assert fresh is not None
            self._payload_bytes += fresh.nbytes
            outcomes.append((fresh, settled))
        return outcomes

    def _stage_request(
        self,
        shard_id: int,
        payload: TickPayload,
        epoch: int,
        fault: Optional[dict[str, object]],
    ) -> ShmControl:
        """Write one shard's batch into its request arena."""
        now, sources, targets, source_indices, loss_ok, immunize = payload
        request, reply = self._shard_arenas(shard_id)
        frames = [sources, targets, source_indices, loss_ok, immunize]
        # The reply's single frame can never exceed the tick's
        # target count, so the driver pre-sizes it here — workers
        # never own (and so never grow) a segment.
        reply.ensure(capacity_for([(len(targets), np.uint32)]))
        request.write(epoch, frames)
        self._payload_bytes += _payload_nbytes(payload)
        send_epoch = epoch
        if _fault_matches(fault, "garble-header", shard_id, epoch):
            self._garble_request_header(request)
        elif _fault_matches(fault, "stale-epoch", shard_id, epoch):
            send_epoch = epoch - 1
        control: ShmControl = (
            shard_id,
            now,
            send_epoch,
            request.name,
            reply.name,
        )
        self._pipe_bytes += len(pickle.dumps(control))
        return control

    def _settle(self, future: "Future[Any]") -> Any:
        """A future's result, or the exception that failed it.

        With a heartbeat, a worker that gives no reply in time counts
        as hung: the timeout becomes the failure outcome and recovery
        replaces the (still wedged) worker rather than waiting on it.
        """
        try:
            if self._heartbeat is not None:
                return future.result(timeout=self._heartbeat)
            return future.result()
        except _FutureTimeout:
            return TimeoutError(
                f"shard worker gave no reply within the "
                f"{self._heartbeat:g}s heartbeat"
            )
        except Exception as error:
            return error

    # -- supervision ---------------------------------------------------

    def _recover(
        self,
        payloads: list[TickPayload],
        outcomes: list[Union[TickReply, BaseException]],
        failures: list[int],
    ) -> None:
        """Respawn every failed slot and re-run the current tick on it.

        A dead worker takes down *all* engines resident in its slot,
        so recovery is per slot: terminate the executor, fork a fresh
        one, rebuild each of its shards (seed → latest snapshot →
        replay of the buffered payloads under fresh epochs), then
        re-issue the failed tick.  Anything that goes wrong here —
        budget exhausted, teardown incomplete, replay failure —
        raises, and the driver falls back to the serial re-run.
        """
        assert self._seeds is not None
        slots = sorted(
            {shard_id % len(self._pools) for shard_id in failures}
        )
        first_error = outcomes[failures[0]]
        for slot in slots:
            self._respawns += 1
            if self._respawns > MAX_RESPAWNS:
                raise RuntimeError(
                    f"shard pool respawn budget ({MAX_RESPAWNS}) "
                    f"exhausted; last failure: {first_error}"
                )
            reason = next(
                str(outcomes[index]) or type(outcomes[index]).__name__
                for index in failures
                if index % len(self._pools) == slot
            )
            self._respawn_slot(slot, payloads, outcomes, reason)

    def _respawn_slot(
        self,
        slot: int,
        payloads: list[TickPayload],
        outcomes: list[Union[TickReply, BaseException]],
        reason: str,
    ) -> None:
        assert self._seeds is not None
        if not _terminate_executor(self._pools[slot]):
            raise RuntimeError(
                f"slot {slot} teardown did not complete; forking a "
                "replacement worker would risk a deadlock"
            )
        self._pools[slot] = ProcessPoolExecutor(max_workers=1)
        pool = self._pools[slot]
        for shard_id in range(self._num_shards):
            if shard_id % len(self._pools) != slot:
                continue
            pool.submit(
                _build_engine, self._spec, shard_id, self._seeds[shard_id]
            ).result()
            if self._snapshots is not None:
                pool.submit(
                    _restore_shard, shard_id, self._snapshots[shard_id]
                ).result()
            replayed = 0
            for payload in self._replay[shard_id]:
                self._replay_payload(pool, shard_id, payload)
                replayed += 1
            outcomes[shard_id] = self._replay_payload(
                pool, shard_id, payloads[shard_id]
            )
            record_recovery(
                "worker-respawn",
                shard=shard_id,
                slot=slot,
                reason=reason,
                replayed_ticks=replayed,
                tick=self._ticks - 1,
            )

    def _replay_payload(
        self,
        pool: ProcessPoolExecutor,
        shard_id: int,
        payload: TickPayload,
    ) -> TickReply:
        """Re-run one buffered payload on a freshly respawned shard.

        Replays consume no driver RNG (payloads carry only pre-drawn
        arrays) and use fresh epochs, so a tick-keyed fault cannot
        re-fire during its own recovery.
        """
        self._epoch += 1
        epoch = self._epoch
        if self._transport == "shmem":
            control = self._stage_request(shard_id, payload, epoch, None)
            settled = self._settle(pool.submit(_run_tick_shm, *control))
            if isinstance(settled, BaseException):
                raise settled
            (fresh,) = self._arenas[shard_id][1].read(epoch)
            assert fresh is not None
            return (fresh, settled)
        self._payload_bytes += _payload_nbytes(payload)
        settled = self._settle(
            pool.submit(_run_tick, shard_id, payload, epoch)
        )
        if isinstance(settled, BaseException):
            raise settled
        return settled  # type: ignore[no-any-return]

    def snapshot(self) -> list[dict[str, Any]]:
        """Every shard's state (sensor clones included), in shard order.

        Under supervision the states become the new recovery baseline
        and the replay buffer resets — the checkpoint cadence is what
        bounds replay memory.
        """
        futures = [
            self._pool_for(shard_id).submit(_snapshot_shard, shard_id)
            for shard_id in range(self._num_shards)
        ]
        states = [future.result() for future in futures]
        if self._supervise:
            self._snapshots = states
            self._replay = [[] for _ in range(self._num_shards)]
        return states

    def restore(self, states: list[dict[str, Any]]) -> None:
        """Overwrite every shard's state (a checkpoint-resume start)."""
        futures = [
            self._pool_for(shard_id).submit(_restore_shard, shard_id, state)
            for shard_id, state in enumerate(states)
        ]
        for future in futures:
            future.result()
        if self._supervise:
            self._snapshots = list(states)
            self._replay = [[] for _ in range(self._num_shards)]

    @staticmethod
    def _garble_request_header(request: ShmArena) -> None:
        """Test hook: clobber the just-written message's magic."""
        segment = attach(request.name)
        try:
            segment.buf[0] = 0xFF
        finally:
            segment.close()

    def collect_sensors(self) -> list[SensorState]:
        """Every shard's sensor clones, in shard order."""
        futures: list[Future[SensorState]] = [
            self._pool_for(shard_id).submit(_collect_sensors, shard_id)
            for shard_id in range(self._num_shards)
        ]
        return [future.result() for future in futures]

    def stats(self) -> dict[str, int | str]:
        """Transport byte counters for benchmarks and tests.

        ``payload_bytes`` is the array volume moved per run in either
        transport; ``pipe_bytes`` is what actually crossed the
        executor's pickle pipe — the whole payload in pickle mode,
        only the control tuples in shmem mode.
        """
        return {
            "transport": self._transport,
            "ticks": self._ticks,
            "payload_bytes": self._payload_bytes,
            "pipe_bytes": self._pipe_bytes,
        }

    def close(self) -> None:
        """Tear down workers and unlink shared-memory segments.

        Idempotent; runs from the driver's ``finally``, the
        pool-failure path, context-manager exit, and ``__del__`` —
        whichever comes first.  ``wait=True`` so every executor's
        management thread has fully exited before the interpreter can
        reach the concurrent.futures atexit hook — a non-waiting
        shutdown races that hook against the wakeup-pipe close and
        spews ``Exception ignored`` noise at exit.  Pools are idle
        (every tick future already resolved) or broken here, so the
        join is prompt either way.  Arenas are unlinked *after* the
        workers exit so no worker can attach a name mid-unlink.
        """
        if self._closed:
            return
        self._closed = True
        for pool in self._pools:
            pool.shutdown(wait=True, cancel_futures=True)
        for request, reply in self._arenas.values():
            request.close()
            reply.close()
        self._arenas.clear()

    def __enter__(self) -> "ShardPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC-order dependent
        try:
            self.close()
        except Exception:  # noqa: RP007 — interpreter-teardown close; nothing left to tell
            pass
