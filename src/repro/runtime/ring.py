"""Persistent SPSC command rings for the shard pool's ring transport.

The shared-memory transport (:mod:`repro.runtime.shmem`) moved the
*bulk* arrays out of the executor pipe, but each shard-tick still cost
one ``ProcessPoolExecutor.submit`` round trip — pickle a control
tuple, wake the executor's management thread, queue, unpickle, run,
pickle the result back.  This module replaces that per-tick control
path with one fixed-size single-producer/single-consumer ring per
direction, living in its own shared-memory segment: the driver
*writes* a ~100 B command and *sets* a doorbell
(:class:`multiprocessing.Event`); the resident worker pump pops it,
runs the tick, and pushes a reply through the opposite ring.  One
write + one wake per shard-tick, no executor machinery on the path.

**Segment layout**::

    header | magic u32 | version u32 | capacity u32 | slot_bytes u32 |
           | head u64 | tail u64 |
    slots  | capacity x ( seq u64 | message bytes ) |

**Slot protocol** (bounded SPSC, per-slot sequence numbers):

* initially ``slot[i].seq == i``;
* the producer's ticket ``t`` claims slot ``t % capacity``: the slot
  is free when its ``seq == t``; the producer writes the message
  *first*, then publishes ``seq = t + 1`` — the sequence word is the
  release flag, so a consumer never sees a half-written message under
  a published sequence;
* the consumer's ticket ``t`` reads slot ``t % capacity`` when its
  ``seq == t + 1``, decodes (and validates) the message, then frees
  the slot by publishing ``seq = t + capacity``.

``head``/``tail`` in the header persist each side's next ticket (the
producer owns ``head``, the consumer owns ``tail`` — SPSC, so no
write races).  They are *resume hints*, not synchronization: a pump
that re-attaches after a pause picks its ticket up from the header
and continues exactly where the previous pump stopped; the per-slot
sequences remain the actual ordering protocol.

**Messages** are a fixed struct (kind, shard, epoch, tick time, two
integer values) plus two short length-prefixed strings — segment
names on the command side, an error text on the reply side.  Every
pop validates the message kind, so a clobbered slot surfaces as
:class:`RingError` (the shard pool treats it exactly like a garbled
shared-memory header: fail the shard, degrade or respawn).

Ownership mirrors :class:`~repro.runtime.shmem.ShmArena`: the driver
creates and unlinks ring segments; workers only ever attach.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.runtime.shmem import _create_segment, attach

if TYPE_CHECKING:
    from multiprocessing.shared_memory import SharedMemory


class RingError(RuntimeError):
    """A ring segment or message failed validation (garbled/foreign) —
    recoverable by failing the shard like any transport fault."""


#: ``b"RPRG"`` little-endian: *r*epro *p*robe *r*in*g*.
MAGIC = 0x47525052

#: Bump on any incompatible layout change; attachers reject mismatches.
VERSION = 1

#: Header: magic u32, version u32, capacity u32, slot_bytes u32,
#: head u64, tail u64.
_HEADER = struct.Struct("<IIIIQQ")

#: Fixed message prefix: kind u32, shard u32, epoch u64, now f64,
#: value i64, aux i64, text lengths u16 x 2 (+pad to 48).
_MESSAGE = struct.Struct("<IIQdqqHH4x")

#: Per-slot sequence word.
_SEQ = struct.Struct("<Q")

#: Whole slot: sequence word + one encoded message.
SLOT_BYTES = 256

#: Bytes available for the two strings after the fixed prefix.
_TEXT_BYTES = SLOT_BYTES - _SEQ.size - _MESSAGE.size

#: Default ring capacity (slots).  Commands outstanding per worker are
#: bounded by its resident shard count, so a handful of slots suffice;
#: a full ring is back-pressure, not an error.
DEFAULT_CAPACITY = 8

#: The sequence protocol needs at least two slots: a producer's
#: "published" word is ``ticket + 1`` and a consumer's "freed" word is
#: ``ticket + capacity``, so with one slot the full and free states
#: collide and the producer would overwrite an unconsumed message.
MIN_CAPACITY = 2

# Message kinds.  Anything else read back from a slot is corruption.
KIND_TICK = 1
KIND_STOP = 2
KIND_DONE = 3
KIND_ERROR = 4

_KINDS = frozenset((KIND_TICK, KIND_STOP, KIND_DONE, KIND_ERROR))


@dataclass(frozen=True)
class RingMessage:
    """One command or reply riding a ring slot.

    ``text``/``text2`` carry the request/reply segment names on the
    command side and the error text (``text``) on the reply side;
    together they must fit the slot's string area (long error texts
    are truncated by :meth:`SpscRing.try_push`).
    """

    kind: int
    shard: int
    epoch: int
    now: float = 0.0
    value: int = 0
    aux: int = 0
    text: str = ""
    text2: str = ""


class SpscRing:
    """One direction of a driver↔worker channel in shared memory.

    The creating side (:meth:`create`, always the driver) owns the
    segment and unlinks it on :meth:`close`; the attaching side
    (:meth:`attach`, the worker pump) only maps it.  Each object is
    used in exactly one role — producer (:meth:`try_push`) or
    consumer (:meth:`try_pop`) — and keeps its ticket in the header
    so a successor object can resume the same role.
    """

    __slots__ = ("_segment", "_owner", "_capacity", "_push_ticket", "_pop_ticket", "_closed")

    def __init__(self, segment: "SharedMemory", owner: bool):
        buf = segment.buf
        if len(buf) < _HEADER.size:
            raise RingError(
                f"ring segment maps only {len(buf)} bytes — no header"
            )
        magic, version, capacity, slot_bytes, head, tail = _HEADER.unpack_from(buf, 0)
        if magic != MAGIC:
            raise RingError(
                f"bad ring magic {magic:#010x} (expected {MAGIC:#010x})"
            )
        if version != VERSION:
            raise RingError(
                f"ring protocol version {version} (expected {VERSION})"
            )
        if slot_bytes != SLOT_BYTES:
            raise RingError(
                f"ring slot size {slot_bytes} (expected {SLOT_BYTES})"
            )
        needed = _HEADER.size + capacity * SLOT_BYTES
        if capacity < MIN_CAPACITY or len(buf) < needed:
            raise RingError(
                f"ring capacity {capacity} does not fit the "
                f"{len(buf)}-byte segment"
            )
        self._segment = segment
        self._owner = owner
        self._capacity = capacity
        self._push_ticket = head
        self._pop_ticket = tail
        self._closed = False

    # -- construction --------------------------------------------------

    @classmethod
    def create(cls, tag: str, capacity: int = DEFAULT_CAPACITY) -> "SpscRing":
        """A fresh driver-owned ring with every slot free."""
        if capacity < MIN_CAPACITY:
            raise ValueError(
                f"ring capacity must be >= {MIN_CAPACITY}, got {capacity}"
                " (one slot cannot distinguish full from free)"
            )
        segment = _create_segment(tag, _HEADER.size + capacity * SLOT_BYTES)
        _HEADER.pack_into(
            segment.buf, 0, MAGIC, VERSION, capacity, SLOT_BYTES, 0, 0
        )
        for index in range(capacity):
            _SEQ.pack_into(segment.buf, cls._slot_offset_for(index), index)
        return cls(segment, owner=True)

    @classmethod
    def attach(cls, name: str) -> "SpscRing":
        """Map an existing ring (worker side; never unlinks)."""
        return cls(attach(name), owner=False)

    @staticmethod
    def _slot_offset_for(index: int) -> int:
        return _HEADER.size + index * SLOT_BYTES

    # -- introspection -------------------------------------------------

    @property
    def name(self) -> str:
        """The segment's name (what the other side attaches)."""
        return self._segment.name

    @property
    def capacity(self) -> int:
        """How many messages the ring holds before back-pressure."""
        return self._capacity

    # -- the SPSC protocol ---------------------------------------------

    def _seq(self, offset: int) -> int:
        value: int = _SEQ.unpack_from(self._segment.buf, offset)[0]
        return value

    def try_push(self, message: RingMessage) -> bool:
        """Publish one message; ``False`` when the ring is full.

        The message bytes are written before the slot's sequence word,
        so a concurrent consumer either sees the previous (free)
        sequence or a fully written message — never a torn one.
        """
        if self._closed:
            raise RingError("ring is closed")
        ticket = self._push_ticket
        offset = self._slot_offset_for(ticket % self._capacity)
        if self._seq(offset) != ticket:
            return False
        text = message.text.encode()
        text2 = message.text2.encode()
        if len(text) + len(text2) > _TEXT_BYTES:
            # Only error texts can realistically overflow; keep the
            # head of the message and drop the rest.
            text = text[: max(0, _TEXT_BYTES - len(text2))]
        buf = self._segment.buf
        body = offset + _SEQ.size
        _MESSAGE.pack_into(
            buf,
            body,
            message.kind,
            message.shard,
            message.epoch,
            message.now,
            message.value,
            message.aux,
            len(text),
            len(text2),
        )
        strings = body + _MESSAGE.size
        buf[strings : strings + len(text)] = text
        buf[strings + len(text) : strings + len(text) + len(text2)] = text2
        _SEQ.pack_into(buf, offset, ticket + 1)
        self._push_ticket = ticket + 1
        # Persist the producer ticket so a successor producer object
        # (after a pump pause/restart) resumes at the right slot.
        struct.pack_into("<Q", buf, 16, self._push_ticket)
        return True

    def try_pop(self) -> Optional[RingMessage]:
        """Consume one message; ``None`` when the ring is empty.

        Raises :class:`RingError` on a slot whose decoded kind is not
        a known message kind — a clobbered or foreign slot.  The slot
        is *not* freed in that case; the channel is considered dead.
        """
        if self._closed:
            raise RingError("ring is closed")
        ticket = self._pop_ticket
        offset = self._slot_offset_for(ticket % self._capacity)
        if self._seq(offset) != ticket + 1:
            return None
        buf = self._segment.buf
        body = offset + _SEQ.size
        kind, shard, epoch, now, value, aux, text_len, text2_len = _MESSAGE.unpack_from(buf, body)
        if kind not in _KINDS or text_len + text2_len > _TEXT_BYTES:
            raise RingError(
                f"ring slot {ticket % self._capacity} is garbled "
                f"(kind {kind:#x})"
            )
        strings = body + _MESSAGE.size
        text = bytes(buf[strings : strings + text_len]).decode(errors="replace")
        text2 = bytes(
            buf[strings + text_len : strings + text_len + text2_len]
        ).decode(errors="replace")
        _SEQ.pack_into(buf, offset, ticket + self._capacity)
        self._pop_ticket = ticket + 1
        # Persist the consumer ticket (see try_push).
        struct.pack_into("<Q", buf, 24, self._pop_ticket)
        return RingMessage(
            kind=kind,
            shard=shard,
            epoch=epoch,
            now=now,
            value=value,
            aux=aux,
            text=text,
            text2=text2,
        )

    # -- test / fault hooks --------------------------------------------

    def garble_last_push(self) -> None:
        """Clobber the most recently pushed slot's message kind.

        Fault-injection hook for the ``garble-ring`` transport fault:
        the consumer's next :meth:`try_pop` of that slot raises
        :class:`RingError` instead of returning a message.
        """
        if self._push_ticket == 0:
            raise RingError("nothing pushed yet")
        offset = self._slot_offset_for(
            (self._push_ticket - 1) % self._capacity
        )
        struct.pack_into(
            "<I", self._segment.buf, offset + _SEQ.size, 0xDEADBEEF
        )

    # -- lifecycle -----------------------------------------------------

    def close(self) -> None:
        """Unmap (and, for the owner, unlink); safe to call repeatedly."""
        if self._closed:
            return
        self._closed = True
        try:
            self._segment.close()
        except BufferError:  # noqa: RP007 — a live view pins the mapping; it outlives the object harmlessly
            pass
        if self._owner:
            try:
                self._segment.unlink()
            except FileNotFoundError:  # noqa: RP007 — already unlinked; the goal state
                pass

    def __enter__(self) -> "SpscRing":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC-order dependent
        try:
            self.close()
        except Exception:  # noqa: RP007 — interpreter-teardown close; nothing left to tell
            pass


__all__ = [
    "DEFAULT_CAPACITY",
    "MIN_CAPACITY",
    "KIND_DONE",
    "KIND_ERROR",
    "KIND_STOP",
    "KIND_TICK",
    "MAGIC",
    "RingError",
    "RingMessage",
    "SLOT_BYTES",
    "SpscRing",
    "VERSION",
]
