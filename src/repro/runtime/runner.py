"""The fault-tolerant parallel trial runner.

A :class:`Trial` is one picklable unit of work: a module-level
callable, its keyword arguments, and the seed material that makes it
deterministic.  :class:`TrialRunner` executes a batch of trials —
over a ``ProcessPoolExecutor`` when ``workers > 1``, in-process
otherwise — consulting an optional :class:`~repro.runtime.cache.ResultCache`
first and storing fresh results back.

Execution is *per-trial*: every trial rides its own ``submit()``
future, so one raising, hanging, or worker-killing trial never
discards its siblings' finished results.  A :class:`RetryPolicy`
bounds deterministic re-execution (the retry re-runs the *identical*
seeded trial — no clocks, no jitter), a per-trial ``timeout``
replaces the pool under hung workers, and a
:class:`~repro.runtime.journal.TrialJournal` checkpoints completions
so an interrupted campaign resumes where it died.  Every recovery is
recorded in the returned :class:`~repro.runtime.report.RunReport`.

Because every trial carries its own ``SeedSequence``-derived RNG,
execution order, process placement, retries, and pool replacement
cannot change results: the serial and parallel paths — and every
recovery path between them — are bitwise identical, and a broken
pool (missing ``fork`` support, unpicklable payloads, resource
limits) degrades to the serial path with the completed trials kept.
"""

from __future__ import annotations

import os
import pickle
import time
import warnings
from collections import deque
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Optional, Sequence, Union

from repro.runtime.cache import MISS, ResultCache
from repro.runtime.faults import (
    FAULT_PLAN_ENV,
    FaultPlan,
    FaultSpec,
    apply_fault,
    plan_from_env,
)
from repro.runtime.journal import TrialJournal
from repro.runtime.report import RunReport, TrialOutcome
from repro.runtime.seeding import spawn_trial_sequences

#: How often (seconds) the parallel loop wakes to check timeouts and
#: observe which futures have started running.
_TICK_SECONDS = 0.05

#: Exception types that mean "this work could not cross the process
#: boundary" (unpicklable payload or result) rather than "the trial
#: failed"; such trials re-execute serially in the parent.
_TRANSPORT_ERRORS = (pickle.PicklingError, TypeError, AttributeError, ImportError)


@dataclass(frozen=True)
class Trial:
    """One deterministic unit of work.

    Attributes
    ----------
    func:
        A picklable (module-level) callable run as ``func(**kwargs)``.
    kwargs:
        Keyword arguments; must be picklable for parallel execution.
    seed:
        Seed material injected as ``kwargs[seed_param]`` (skipped when
        ``None`` — the callable is assumed self-seeding).
    cache_key:
        Stable identity for the result cache and the trial journal;
        ``None`` disables caching/checkpointing for this trial.
    label:
        Human-readable tag for logs and error messages.
    """

    func: Callable[..., Any]
    kwargs: Mapping[str, Any] = field(default_factory=dict)
    seed: Any = None
    seed_param: str = "seed"
    cache_key: Optional[str] = None
    label: str = ""

    def execute(self) -> Any:
        """Run the trial in the current process."""
        kwargs = dict(self.kwargs)
        if self.seed is not None:
            kwargs[self.seed_param] = self.seed
        return self.func(**kwargs)


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded, deterministic re-execution of failed trials.

    A retry re-runs the *identical* seeded :class:`Trial` — same
    callable, same kwargs, same ``SeedSequence`` — so a trial that
    eventually succeeds yields a result bitwise-equal to one that
    succeeded first try.  No backoff exists because none is needed:
    the failures retried here (injected faults, killed workers,
    transient resource exhaustion) are not rate-limited services.

    Attributes
    ----------
    max_attempts:
        Total executions allowed per trial (1 = never retry).
    retry_timeouts:
        Whether a timed-out attempt may be retried; when ``False``
        the first timeout is final.
    """

    max_attempts: int = 1
    retry_timeouts: bool = True

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")

    @classmethod
    def from_retries(cls, retries: int) -> "RetryPolicy":
        """``retries`` extra attempts after the first (CLI spelling)."""
        if retries < 0:
            raise ValueError("retries must be >= 0")
        return cls(max_attempts=retries + 1)


class TrialTimeoutError(RuntimeError):
    """A trial's attempt exceeded the per-trial timeout."""


@dataclass(frozen=True)
class _TaskItem:
    """One attempt of one trial, as shipped to a worker."""

    position: int
    trial: Trial
    attempt: int
    fault: Optional[FaultSpec] = None


@dataclass(frozen=True)
class _Envelope:
    """One attempt's outcome, as shipped back from a worker."""

    position: int
    ok: bool
    value: Any = None
    error: Optional[BaseException] = None


def _run_attempt(item: _TaskItem, *, in_worker: bool) -> Any:
    """Execute one attempt, applying any injected fault."""
    substitute = apply_fault(
        item.fault,
        index=item.position,
        attempt=item.attempt,
        in_worker=in_worker,
    )
    if substitute is not None:
        return substitute
    # ``$REPRO_FAULT_PLAN`` targets the *outermost* runner's trials.
    # A trial body may construct its own nested ``TrialRunner`` (the
    # figure experiments do); scrub the plan while the body runs so
    # inner trials are not independently re-faulted by position.
    saved = os.environ.pop(FAULT_PLAN_ENV, None)
    try:
        return item.trial.execute()
    finally:
        if saved is not None:
            os.environ[FAULT_PLAN_ENV] = saved


def _execute_task(items: tuple[_TaskItem, ...]) -> tuple[_Envelope, ...]:
    """Worker trampoline: run each trial, envelope success or failure.

    Per-trial try/except keeps a raising trial from poisoning the
    siblings that share its dispatch (``chunk_size > 1``).
    """
    envelopes = []
    for item in items:
        try:
            value = _run_attempt(item, in_worker=True)
        except Exception as error:
            envelopes.append(
                _Envelope(position=item.position, ok=False, error=error)
            )
        else:
            envelopes.append(
                _Envelope(position=item.position, ok=True, value=value)
            )
    return tuple(envelopes)


def _execute_trial(trial: Trial) -> Any:
    """Module-level single-trial trampoline (kept for compatibility)."""
    return trial.execute()


def resolve_workers(workers: Optional[int]) -> int:
    """Normalize a worker-count request (``None``/``0`` → all cores)."""
    if workers is None or workers == 0:
        return os.cpu_count() or 1
    if workers < 0:
        raise ValueError("workers must be a positive integer (or 0 for all cores)")
    return workers


@dataclass
class _TrialState:
    """Mutable bookkeeping for one trial across attempts."""

    trial: Trial
    position: int
    attempts: int = 0
    timed_out_attempts: int = 0
    error: Optional[BaseException] = None
    status: str = ""
    value: Any = None
    done: bool = False

    @property
    def succeeded(self) -> bool:
        return self.done and self.status not in ("failed", "timed-out")


class TrialRunner:
    """Runs batches of independent trials, parallel or serial.

    Parameters
    ----------
    workers:
        Process count; ``1`` runs in-process, ``None``/``0`` uses all
        cores.
    cache:
        Optional :class:`ResultCache` consulted per trial (only for
        trials carrying a ``cache_key``).
    chunk_size:
        Trials grouped per dispatched task on first submission (bounds
        IPC overhead for very large batches of tiny trials).  Default
        ``None`` dispatches per-trial — the fault-isolation unit — and
        retries are always dispatched per-trial.  Timeouts apply per
        dispatched task.
    retry:
        A :class:`RetryPolicy`, a plain retry count (extra attempts),
        or ``None`` for the default single-attempt policy.
    timeout:
        Seconds a dispatched task may *run* (queue time excluded)
        before its worker pool is replaced and the attempt counts as
        timed out.  Only enforceable under parallel execution; the
        serial path records an event and runs untimed.
    journal:
        Optional :class:`TrialJournal`; completed trials are recorded
        by cache key, and trials the journal already marks complete
        are served from the cache as ``resumed`` instead of re-run.
    fault_plan:
        Deterministic fault injection for chaos testing; ``None``
        consults ``$REPRO_FAULT_PLAN`` (see
        :mod:`repro.runtime.faults`), which is unset in normal use.
    """

    def __init__(
        self,
        workers: Optional[int] = 1,
        cache: Optional[ResultCache] = None,
        chunk_size: Optional[int] = None,
        *,
        retry: Union[RetryPolicy, int, None] = None,
        timeout: Optional[float] = None,
        journal: Optional[TrialJournal] = None,
        fault_plan: Optional[FaultPlan] = None,
    ) -> None:
        if chunk_size is not None and chunk_size < 1:
            raise ValueError("chunk_size must be at least 1")
        if timeout is not None and timeout <= 0:
            raise ValueError("timeout must be positive (seconds)")
        self.workers = resolve_workers(workers)
        self.cache = cache
        self.chunk_size = chunk_size
        if retry is None:
            retry = RetryPolicy()
        elif isinstance(retry, int):
            retry = RetryPolicy.from_retries(retry)
        self.retry = retry
        self.timeout = timeout
        self.journal = journal
        self.fault_plan = fault_plan if fault_plan is not None else plan_from_env()

    # -- execution ---------------------------------------------------

    def run(self, trials: Sequence[Trial]) -> list[Any]:
        """Execute trials, preserving order; cache-aware.

        Raises the first failing trial's final exception when any
        trial exhausts its attempts (historical semantics); use
        :meth:`run_report` to keep the surviving siblings instead.
        """
        report = self.run_report(trials)
        for outcome in report.outcomes:
            if not outcome.succeeded:
                if outcome.error is not None:
                    raise outcome.error
                report.raise_on_failure()
        return list(report.results)

    def run_report(self, trials: Sequence[Trial]) -> RunReport:
        """Execute trials and return the full :class:`RunReport`.

        Never raises for trial failures: failed slots hold ``None``
        in ``report.results`` and their outcomes carry the final
        exception, so one bad trial cannot discard its siblings.
        """
        states = [
            _TrialState(trial=trial, position=index)
            for index, trial in enumerate(trials)
        ]
        events: list[str] = []
        pending: list[_TrialState] = []
        for state in states:
            key = state.trial.cache_key
            cached: Any = MISS
            if self.cache is not None and key is not None:
                cached = self.cache.get(key)
            if cached is not MISS:
                state.value = cached
                state.done = True
                journaled = self.journal is not None and self.journal.completed(
                    key if key is not None else ""
                )
                state.status = "resumed" if journaled else "cached"
            else:
                if (
                    self.journal is not None
                    and key is not None
                    and self.journal.completed(key)
                ):
                    events.append(
                        f"journal marks {state.trial.label or key} complete "
                        "but its cached result is gone; re-running"
                    )
                pending.append(state)

        if pending:
            self._execute_pending(pending, events)
            self._persist(pending, events)

        outcomes = tuple(
            TrialOutcome(
                index=state.position,
                label=state.trial.label,
                status=state.status,
                attempts=state.attempts,
                timed_out_attempts=state.timed_out_attempts,
                error=None if state.succeeded else state.error,
            )
            for state in states
        )
        results = tuple(
            state.value if state.succeeded else None for state in states
        )
        return RunReport(
            outcomes=outcomes, results=results, fallback_events=tuple(events)
        )

    def run_repeated(
        self,
        func: Callable[..., Any],
        kwargs: Optional[Mapping[str, Any]] = None,
        *,
        trials: int,
        base_seed: int,
        seed_param: str = "seed",
        cache_namespace: Optional[str] = None,
        key_for: Optional[Callable[[Any], Optional[str]]] = None,
        report: bool = False,
    ) -> Any:
        """``trials`` independent repetitions of one callable.

        Trial *i* receives the *i*-th child of
        ``SeedSequence(base_seed)`` as its ``seed_param`` argument.
        ``key_for`` (given each child sequence) or ``cache_namespace``
        (hashed with the kwargs) opt the repetitions into the cache
        and journal.  ``report=True`` returns the full
        :class:`RunReport` instead of the bare result list (and keeps
        surviving siblings when some trials fail).
        """
        from repro.runtime.cache import stable_key

        kwargs = dict(kwargs or {})
        sequences = spawn_trial_sequences(base_seed, trials)
        batch = []
        for index, sequence in enumerate(sequences):
            cache_key = None
            if key_for is not None:
                cache_key = key_for(sequence)
            elif cache_namespace is not None:
                cache_key = stable_key(cache_namespace, kwargs, sequence)
            batch.append(
                Trial(
                    func=func,
                    kwargs=kwargs,
                    seed=sequence,
                    seed_param=seed_param,
                    cache_key=cache_key,
                    label=f"{cache_namespace or func.__name__}[{index}]",
                )
            )
        if report:
            return self.run_report(batch)
        return self.run(batch)

    # -- persistence -------------------------------------------------

    def _persist(
        self, finished: Sequence[_TrialState], events: list[str]
    ) -> None:
        """Write fresh results to the cache and outcomes to the journal."""
        for state in finished:
            key = state.trial.cache_key
            if key is None:
                continue
            if state.succeeded:
                if self.cache is not None:
                    try:
                        self.cache.put(key, state.value)
                    except (OSError, pickle.PicklingError) as error:
                        message = (
                            f"result cache write failed for "
                            f"{state.trial.label or key}: {error}"
                        )
                        events.append(message)
                        warnings.warn(message, RuntimeWarning, stacklevel=4)
                if self.journal is not None and not self.journal.completed(key):
                    self._journal_record(state, key, "ok", events)
            elif self.journal is not None:
                self._journal_record(state, key, state.status, events)

    def _journal_record(
        self, state: _TrialState, key: str, status: str, events: list[str]
    ) -> None:
        assert self.journal is not None
        try:
            self.journal.record(key, status=status, attempts=state.attempts)
        except OSError as error:
            message = (
                f"journal write failed for {state.trial.label or key}: {error}"
            )
            events.append(message)
            warnings.warn(message, RuntimeWarning, stacklevel=5)

    # -- attempt bookkeeping -----------------------------------------

    def _settle_attempt(
        self,
        state: _TrialState,
        *,
        ok: bool,
        value: Any = None,
        error: Optional[BaseException] = None,
        timed_out: bool = False,
    ) -> bool:
        """Charge one attempt; returns True when the trial should retry."""
        state.attempts += 1
        if timed_out:
            state.timed_out_attempts += 1
        if ok:
            state.value = value
            state.error = None
            state.done = True
            state.status = "ok" if state.attempts == 1 else "retried"
            return False
        state.error = error
        exhausted = state.attempts >= self.retry.max_attempts
        blocked = timed_out and not self.retry.retry_timeouts
        if exhausted or blocked:
            state.done = True
            state.status = "timed-out" if timed_out else "failed"
            return False
        return True

    # -- execution backends ------------------------------------------

    def _execute_pending(
        self, pending: list[_TrialState], events: list[str]
    ) -> None:
        if self.workers <= 1 or len(pending) <= 1:
            if self.timeout is not None and pending:
                events.append(
                    "timeouts are not enforced under serial execution"
                )
            for state in pending:
                self._run_serially(state)
            return
        self._execute_parallel(pending, events)

    def _run_serially(self, state: _TrialState) -> None:
        """In-process execution of one trial, retry policy honored."""
        while not state.done:
            attempt = state.attempts + 1
            item = _TaskItem(
                position=state.position,
                trial=state.trial,
                attempt=attempt,
                fault=self._fault_for(state.position, attempt),
            )
            try:
                value = _run_attempt(item, in_worker=False)
            except Exception as error:
                self._settle_attempt(state, ok=False, error=error)
            else:
                self._settle_attempt(state, ok=True, value=value)

    def _fault_for(self, position: int, attempt: int) -> Optional[FaultSpec]:
        if self.fault_plan is None:
            return None
        return self.fault_plan.spec_for(position, attempt)

    def _submit(
        self,
        pool: ProcessPoolExecutor,
        chunk: Sequence[_TrialState],
    ) -> "Future[tuple[_Envelope, ...]]":
        items = tuple(
            _TaskItem(
                position=state.position,
                trial=state.trial,
                attempt=state.attempts + 1,
                fault=self._fault_for(state.position, state.attempts + 1),
            )
            for state in chunk
        )
        return pool.submit(_execute_task, items)

    def _execute_parallel(
        self, pending: list[_TrialState], events: list[str]
    ) -> None:
        """Per-trial futures with retry, timeout, and pool replacement."""
        max_workers = min(self.workers, len(pending))
        queue: deque[_TrialState] = deque(pending)
        pool: Optional[ProcessPoolExecutor] = None
        futures: dict[
            "Future[tuple[_Envelope, ...]]", tuple[_TrialState, ...]
        ] = {}
        started: dict["Future[tuple[_Envelope, ...]]", float] = {}
        serial_states: list[_TrialState] = []
        warned_serial = False

        def fall_back_serially(
            states: Sequence[_TrialState], reason: str
        ) -> None:
            nonlocal warned_serial
            serial_states.extend(states)
            events.append(reason)
            if not warned_serial:
                warnings.warn(
                    f"{reason}; falling back to serial execution",
                    RuntimeWarning,
                    stacklevel=5,
                )
                warned_serial = True

        while queue or futures:
            if pool is None:
                try:
                    pool = ProcessPoolExecutor(max_workers=max_workers)
                except (OSError, ValueError, BrokenProcessPool) as error:
                    fall_back_serially(
                        list(queue),
                        f"process pool unavailable "
                        f"({type(error).__name__}: {error})",
                    )
                    queue.clear()
                    break

            # Keep at most one dispatched chunk per worker in flight,
            # so "in flight" is knowable without sampling worker state:
            # if the pool breaks, exactly those trials are charged an
            # attempt, and trials still in our own queue resubmit free
            # of charge.  Fresh trials may group per ``chunk_size``;
            # retries dispatch one-by-one so a faulty trial never
            # re-drags its chunk siblings along.
            while queue and len(futures) < max_workers:
                chunk = [queue.popleft()]
                if chunk[0].attempts == 0:
                    limit = self.chunk_size or 1
                    while (
                        queue
                        and len(chunk) < limit
                        and queue[0].attempts == 0
                    ):
                        chunk.append(queue.popleft())
                future = self._submit(pool, chunk)
                futures[future] = tuple(chunk)
                started[future] = time.monotonic()

            done, _ = wait(
                set(futures), timeout=_TICK_SECONDS, return_when=FIRST_COMPLETED
            )
            now = time.monotonic()

            pool_broken = False
            for future in done:
                chunk_states = futures.pop(future)
                started.pop(future, None)
                try:
                    envelopes = future.result()
                except BrokenProcessPool as error:
                    pool_broken = True
                    self._handle_break(chunk_states, error, queue)
                except _TRANSPORT_ERRORS as error:
                    # Payload or result could not cross the process
                    # boundary; run these trials in-process instead.
                    fall_back_serially(
                        chunk_states,
                        f"trial transport failed "
                        f"({type(error).__name__}: {error})",
                    )
                except Exception as error:  # unexpected infrastructure
                    fall_back_serially(
                        chunk_states,
                        f"unexpected executor failure "
                        f"({type(error).__name__}: {error})",
                    )
                else:
                    by_position = {
                        envelope.position: envelope for envelope in envelopes
                    }
                    for state in chunk_states:
                        envelope = by_position[state.position]
                        retry = self._settle_attempt(
                            state,
                            ok=envelope.ok,
                            value=envelope.value,
                            error=envelope.error,
                        )
                        if retry:
                            queue.append(state)

            if pool_broken:
                # Everything still in flight is doomed with the pool.
                for chunk_states in futures.values():
                    self._handle_break(
                        chunk_states,
                        BrokenProcessPool(
                            "worker pool broke while this trial was in flight"
                        ),
                        queue,
                    )
                futures.clear()
                started.clear()
                torn_down = self._terminate_pool(pool)
                pool = None
                events.append(
                    "worker pool broke; completed trials kept, pool "
                    "replaced, unfinished trials resubmitted"
                )
                if not torn_down and queue:
                    # Forking a replacement from a process whose dead
                    # pool still has live teardown threads can deadlock
                    # the children; finish in-process instead.
                    fall_back_serially(
                        list(queue),
                        "broken pool teardown did not complete",
                    )
                    queue.clear()
                continue

            if self.timeout is not None:
                expired = [
                    future
                    for future in futures
                    if future in started
                    and now - started[future] >= self.timeout
                ]
                if expired:
                    for future in expired:
                        chunk_states = futures.pop(future)
                        started.pop(future, None)
                        for state in chunk_states:
                            retry = self._settle_attempt(
                                state,
                                ok=False,
                                error=TrialTimeoutError(
                                    f"trial {state.trial.label or state.position} "
                                    f"exceeded {self.timeout}s "
                                    f"(attempt {state.attempts + 1})"
                                ),
                                timed_out=True,
                            )
                            if retry:
                                queue.append(state)
                    # The hung worker cannot be reclaimed politely;
                    # innocents still in flight requeue uncharged.
                    for chunk_states in futures.values():
                        queue.extend(chunk_states)
                    futures.clear()
                    started.clear()
                    torn_down = self._terminate_pool(pool)
                    pool = None
                    events.append(
                        f"per-trial timeout ({self.timeout:g}s) expired; "
                        "hung worker pool replaced"
                    )
                    if not torn_down and queue:
                        fall_back_serially(
                            list(queue),
                            "hung pool teardown did not complete",
                        )
                        queue.clear()
                    continue

        if pool is not None:
            pool.shutdown(wait=True)
        for state in serial_states:
            self._run_serially(state)

    def _handle_break(
        self,
        chunk_states: Sequence[_TrialState],
        error: BaseException,
        queue: "deque[_TrialState]",
    ) -> None:
        """Account for trials that were in flight when the pool died.

        The culprit is unknowable, so every in-flight trial is charged
        an attempt.  At most one chunk per worker is ever in flight,
        so a poisonous trial breaks the pool at most ``max_attempts``
        times and its co-flight neighbours lose at most that many
        attempts; trials still held in the runner's own queue are
        resubmitted free of charge, keeping a deterministic fault
        plan pointed at the same attempt number.
        """
        for state in chunk_states:
            if self._settle_attempt(state, ok=False, error=error):
                queue.append(state)

    @staticmethod
    def _terminate_pool(pool: ProcessPoolExecutor) -> bool:
        """Tear a pool down even when a worker is hung or dead.

        Returns ``True`` when the teardown completed: every worker is
        reaped and the executor's manager thread has exited.  The
        replacement pool ``fork``s new workers, and forking while the
        dead pool's manager/feeder threads still run (holding
        allocator or queue locks) deadlocks the children — callers
        seeing ``False`` must not fork again and should run the
        remaining trials in-process instead.
        """
        # ``_processes`` is CPython implementation detail, but it is the
        # only handle on a worker stuck in an uninterruptible trial.
        workers = getattr(pool, "_processes", None)
        processes = list(workers.values()) if isinstance(workers, dict) else []
        for process in processes:
            try:
                process.terminate()
            except (OSError, ValueError):  # noqa: RP007 — already-dead worker
                pass
        pool.shutdown(wait=False, cancel_futures=True)
        deadline = time.monotonic() + 10.0
        for process in processes:
            try:
                process.join(timeout=min(1.0, max(0.0, deadline - time.monotonic())))
                if process.is_alive():  # SIGTERM masked or worker wedged
                    process.kill()
                    process.join(timeout=max(0.1, deadline - time.monotonic()))
            except (OSError, ValueError, AssertionError):  # noqa: RP007 — reaped elsewhere
                pass
        # The manager thread joins the (now dead) workers and exits;
        # bounded, because a hung teardown must not hang the campaign.
        manager = getattr(pool, "_executor_manager_thread", None)
        if manager is not None and manager.is_alive():
            manager.join(timeout=max(0.1, deadline - time.monotonic()))
            if manager.is_alive():
                return False
        return not any(process.is_alive() for process in processes)
