"""The parallel trial runner.

A :class:`Trial` is one picklable unit of work: a module-level
callable, its keyword arguments, and the seed material that makes it
deterministic.  :class:`TrialRunner` executes a batch of trials —
over a ``ProcessPoolExecutor`` when ``workers > 1``, in-process
otherwise — consulting an optional :class:`~repro.runtime.cache.ResultCache`
first and storing fresh results back.

Because every trial carries its own ``SeedSequence``-derived RNG,
execution order and process placement cannot change results: the
serial and parallel paths are bitwise identical, and a broken pool
(missing ``fork`` support, unpicklable closure, resource limits)
degrades to the serial path with a warning instead of an error.
"""

from __future__ import annotations

import os
import pickle
import warnings
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Optional, Sequence

from repro.runtime.cache import MISS, ResultCache
from repro.runtime.seeding import spawn_trial_sequences


@dataclass(frozen=True)
class Trial:
    """One deterministic unit of work.

    Attributes
    ----------
    func:
        A picklable (module-level) callable run as ``func(**kwargs)``.
    kwargs:
        Keyword arguments; must be picklable for parallel execution.
    seed:
        Seed material injected as ``kwargs[seed_param]`` (skipped when
        ``None`` — the callable is assumed self-seeding).
    cache_key:
        Stable identity for the result cache; ``None`` disables
        caching for this trial.
    label:
        Human-readable tag for logs and error messages.
    """

    func: Callable[..., Any]
    kwargs: Mapping[str, Any] = field(default_factory=dict)
    seed: Any = None
    seed_param: str = "seed"
    cache_key: Optional[str] = None
    label: str = ""

    def execute(self) -> Any:
        """Run the trial in the current process."""
        kwargs = dict(self.kwargs)
        if self.seed is not None:
            kwargs[self.seed_param] = self.seed
        return self.func(**kwargs)


def _execute_trial(trial: Trial) -> Any:
    """Module-level trampoline so the pool can pickle the work."""
    return trial.execute()


def resolve_workers(workers: Optional[int]) -> int:
    """Normalize a worker-count request (``None``/``0`` → all cores)."""
    if workers is None or workers == 0:
        return os.cpu_count() or 1
    if workers < 0:
        raise ValueError("workers must be a positive integer (or 0 for all cores)")
    return workers


class TrialRunner:
    """Runs batches of independent trials, parallel or serial.

    Parameters
    ----------
    workers:
        Process count; ``1`` runs in-process, ``None``/``0`` uses all
        cores.
    cache:
        Optional :class:`ResultCache` consulted per trial (only for
        trials carrying a ``cache_key``).
    chunk_size:
        Trials handed to a worker per dispatch; defaults to an even
        split across workers (bounds IPC overhead for large batches).
    """

    def __init__(
        self,
        workers: Optional[int] = 1,
        cache: Optional[ResultCache] = None,
        chunk_size: Optional[int] = None,
    ) -> None:
        self.workers = resolve_workers(workers)
        self.cache = cache
        self.chunk_size = chunk_size
        if chunk_size is not None and chunk_size < 1:
            raise ValueError("chunk_size must be at least 1")

    # -- execution ---------------------------------------------------

    def run(self, trials: Sequence[Trial]) -> list[Any]:
        """Execute trials, preserving order; cache-aware."""
        trials = list(trials)
        results: list[Any] = [None] * len(trials)
        pending: list[int] = []
        for index, trial in enumerate(trials):
            cached = MISS
            if self.cache is not None and trial.cache_key is not None:
                cached = self.cache.get(trial.cache_key)
            if cached is MISS:
                pending.append(index)
            else:
                results[index] = cached

        if pending:
            fresh = self._execute_batch([trials[i] for i in pending])
            for index, value in zip(pending, fresh):
                results[index] = value
                trial = trials[index]
                if self.cache is not None and trial.cache_key is not None:
                    try:
                        self.cache.put(trial.cache_key, value)
                    except (OSError, pickle.PicklingError) as error:
                        warnings.warn(
                            f"result cache write failed for "
                            f"{trial.label or trial.cache_key}: {error}",
                            RuntimeWarning,
                            stacklevel=2,
                        )
        return results

    def run_repeated(
        self,
        func: Callable[..., Any],
        kwargs: Optional[Mapping[str, Any]] = None,
        *,
        trials: int,
        base_seed: int,
        seed_param: str = "seed",
        cache_namespace: Optional[str] = None,
        key_for: Optional[Callable[[Any], Optional[str]]] = None,
    ) -> list[Any]:
        """``trials`` independent repetitions of one callable.

        Trial *i* receives the *i*-th child of
        ``SeedSequence(base_seed)`` as its ``seed_param`` argument.
        ``key_for`` (given each child sequence) or ``cache_namespace``
        (hashed with the kwargs) opt the repetitions into the cache.
        """
        from repro.runtime.cache import stable_key

        kwargs = dict(kwargs or {})
        sequences = spawn_trial_sequences(base_seed, trials)
        batch = []
        for index, sequence in enumerate(sequences):
            cache_key = None
            if key_for is not None:
                cache_key = key_for(sequence)
            elif cache_namespace is not None:
                cache_key = stable_key(cache_namespace, kwargs, sequence)
            batch.append(
                Trial(
                    func=func,
                    kwargs=kwargs,
                    seed=sequence,
                    seed_param=seed_param,
                    cache_key=cache_key,
                    label=f"{cache_namespace or func.__name__}[{index}]",
                )
            )
        return self.run(batch)

    # -- internals ---------------------------------------------------

    def _execute_batch(self, trials: list[Trial]) -> list[Any]:
        if self.workers <= 1 or len(trials) <= 1:
            return [trial.execute() for trial in trials]
        workers = min(self.workers, len(trials))
        chunk = self.chunk_size or max(1, len(trials) // workers)
        try:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                return list(
                    pool.map(_execute_trial, trials, chunksize=chunk)
                )
        except (BrokenProcessPool, OSError, pickle.PicklingError,
                TypeError, AttributeError, ImportError) as error:
            # TypeError/AttributeError: unpicklable trial payloads.
            warnings.warn(
                f"process pool unavailable ({type(error).__name__}: "
                f"{error}); falling back to serial execution",
                RuntimeWarning,
                stacklevel=3,
            )
            return [trial.execute() for trial in trials]
