"""Parallel trial execution for Monte-Carlo experiment campaigns.

The paper's Section 5 results are outbreak simulations; credible
hotspot statistics need many independent trials.  This subsystem is
the one place that knows how to run them:

* :class:`~repro.runtime.runner.TrialRunner` fans independent trials
  out over a ``ProcessPoolExecutor`` (configurable worker count,
  chunked submission) and falls back to in-process serial execution
  when ``workers=1`` or the pool cannot be used;
* per-trial RNGs derive from ``numpy.random.SeedSequence.spawn``
  (:func:`~repro.runtime.seeding.spawn_trial_sequences`), so serial
  and parallel runs of the same campaign produce bitwise-identical
  results;
* :class:`~repro.runtime.cache.ResultCache` memoizes finished trials
  on disk, keyed by a stable hash of (experiment id, parameters,
  seed), so re-running ``hotspots figure5b`` is instant.
"""

from repro.runtime.cache import ResultCache, stable_key
from repro.runtime.compare import results_equal
from repro.runtime.runner import Trial, TrialRunner
from repro.runtime.seeding import (
    as_seed_sequence,
    seed_fingerprint,
    spawn_trial_sequences,
)

__all__ = [
    "ResultCache",
    "Trial",
    "TrialRunner",
    "as_seed_sequence",
    "results_equal",
    "seed_fingerprint",
    "spawn_trial_sequences",
    "stable_key",
]
