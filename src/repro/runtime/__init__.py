"""Fault-tolerant parallel trial execution for experiment campaigns.

The paper's Section 5 results are outbreak simulations; credible
hotspot statistics need many independent trials — and at production
scale, the runner needs the same failure discipline the paper
demands of the network it models.  This subsystem is the one place
that knows how to run trials:

* :class:`~repro.runtime.runner.TrialRunner` fans independent trials
  out over a ``ProcessPoolExecutor`` — one ``submit()`` future per
  trial, so a raising, hanging, or worker-killing trial never
  discards its siblings — and falls back to in-process serial
  execution when ``workers=1`` or the pool cannot be used, keeping
  every already-completed result;
* :class:`~repro.runtime.runner.RetryPolicy` bounds deterministic
  re-execution and a per-trial ``timeout`` replaces the pool under
  hung workers; every recovery is recorded in a
  :class:`~repro.runtime.report.RunReport`;
* per-trial RNGs derive from ``numpy.random.SeedSequence.spawn``
  (:func:`~repro.runtime.seeding.spawn_trial_sequences`), so serial,
  parallel, retried, and resumed runs of the same campaign produce
  bitwise-identical results;
* :class:`~repro.runtime.cache.ResultCache` memoizes finished trials
  on disk and :class:`~repro.runtime.journal.TrialJournal`
  checkpoints completions, so re-running ``hotspots figure5b`` is
  instant and an interrupted campaign resumes where it died;
* :mod:`repro.runtime.faults` injects deterministic failures
  (raise/hang/kill/corrupt) so every recovery path is testable.
"""

from repro.runtime.cache import ResultCache, stable_key
from repro.runtime.compare import results_equal
from repro.runtime.faults import FaultPlan, FaultSpec, InjectedFault
from repro.runtime.journal import TrialJournal
from repro.runtime.report import RunReport, TrialExecutionError, TrialOutcome
from repro.runtime.runner import (
    RetryPolicy,
    Trial,
    TrialRunner,
    TrialTimeoutError,
)
from repro.runtime.seeding import (
    as_seed_sequence,
    seed_fingerprint,
    spawn_trial_sequences,
)

__all__ = [
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "ResultCache",
    "RetryPolicy",
    "RunReport",
    "Trial",
    "TrialExecutionError",
    "TrialJournal",
    "TrialOutcome",
    "TrialRunner",
    "TrialTimeoutError",
    "as_seed_sequence",
    "results_equal",
    "seed_fingerprint",
    "spawn_trial_sequences",
    "stable_key",
]
