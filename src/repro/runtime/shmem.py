"""Shared-memory tick transport: header-framed array exchange.

The shard worker pool's original transport pickled every routed probe
batch (`TickPayload`) into the executor pipe and every reply back out
— per-tick serialization cost proportional to the probe volume.  This
module replaces the bulk path with named
:mod:`multiprocessing.shared_memory` segments: the driver writes each
shard's arrays into that shard's *request* arena, the worker maps the
segment once and reads them zero-copy, and the fresh-infection reply
comes back the same way through a *reply* arena.  Only a tiny control
tuple (shard id, tick time, epoch, segment names) crosses the pickle
pipe each tick.

**Frame protocol.**  A segment holds one *message* at a time::

    header   | magic u32 | version u32 | epoch u64 | frame_count u32 |
    table    | frame_count x ( dtype_code i32 | length i64 ) |
    payload  | frame 0 bytes ... frame 1 bytes ...  (16-byte aligned)

Frames are positional — writer and reader agree on the slot meaning
(the shard tick uses ``sources, targets, policy, loss, immunize``; the
reply uses ``fresh``) — and a slot may be *absent* (dtype code ``-1``,
the ``None`` of the wire format).  Every read validates magic, version
and the expected epoch and bounds-checks the frame table against the
mapped size, so a truncated, garbled, or stale message surfaces as
:class:`ShmProtocolError` — which the shard driver treats exactly like
a dead worker: degrade to the serial re-run.

**Growth and epoch invalidation.**  Segments grow geometrically like
:class:`~repro.sim.arena.TickArena` buffers: when a tick's payload
outgrows the segment, the owner creates a doubled replacement under a
*new* name and unlinks the old one (POSIX keeps existing mappings
alive, so a worker still attached to the retired segment is safe —
it just can never validate a fresh epoch there).  The per-tick control
message carries the current name, and the monotonically increasing
epoch is written into the header *after* the payload, so a reader that
races a resize sees an epoch mismatch, never a torn frame it would
trust.

**Ownership.**  The driver creates and unlinks every segment; workers
only ever attach.  :func:`attach` deliberately skips Python's
``resource_tracker`` registration (``track=False`` where available) —
double-tracking a segment the driver will unlink makes the tracker
spew "leaked shared_memory" noise at exit and, worse, unlink segments
that are still in use.
"""

from __future__ import annotations

import itertools
import os
import struct
from contextlib import contextmanager
from typing import TYPE_CHECKING, Iterator, Optional, Sequence

import numpy as np

if TYPE_CHECKING:
    from multiprocessing.shared_memory import SharedMemory

try:  # pragma: no cover - import always succeeds on CPython >= 3.8
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover - exotic platforms only
    _shared_memory = None  # type: ignore[assignment]


class ShmProtocolError(RuntimeError):
    """A shared-memory message failed validation (truncated, garbled,
    or stale-epoch) — recoverable by degrading to the serial path."""


#: ``b"RPSM"`` little-endian: *r*epro *p*robe *s*hared *m*emory.
MAGIC = 0x4D535052

#: Bump on any incompatible layout change; readers reject mismatches.
VERSION = 1

#: Header: magic u32, version u32, epoch u64, frame_count u32 (+pad).
_HEADER = struct.Struct("<IIQI4x")

#: Frame-table entry: dtype code i32 (-1 = absent frame), length i64.
_FRAME = struct.Struct("<iq")

#: Payload frames start and advance on 16-byte boundaries.
_ALIGN = 16

#: Sanity ceiling on the header's frame count — anything larger is a
#: garbled header, not a real message (tick messages use <= 5 frames).
_MAX_FRAMES = 64

#: The dtypes the wire format can carry; a frame's code indexes this
#: table.  Append only — codes are part of the protocol.
_DTYPES: tuple[np.dtype, ...] = tuple(
    np.dtype(d)
    for d in (
        np.uint32,
        np.int64,
        np.bool_,
        np.uint8,
        np.uint64,
        np.float64,
        np.int32,
        np.float32,
        np.intp,
    )
)
_CODE_BY_DTYPE: dict[str, int] = {
    dtype.str: code for code, dtype in enumerate(_DTYPES)
}

#: Smallest segment ever created; growth at least doubles from here.
MIN_CAPACITY = 1 << 16

#: Distinctive prefix so tests (and humans) can spot our segments in
#: ``/dev/shm`` — kept short because macOS caps names at 31 chars.
NAME_PREFIX = "rs"

_NAME_SEQUENCE = itertools.count()

#: Unlinked segments whose unmap was blocked by a live loaned view;
#: kept so their memory outlives the borrower (freed at exit).
_RETIRED_SEGMENTS: list["SharedMemory"] = []


def shared_memory_available() -> bool:
    """Whether this platform offers ``multiprocessing.shared_memory``."""
    return _shared_memory is not None


def _aligned(nbytes: int) -> int:
    return (nbytes + _ALIGN - 1) & ~(_ALIGN - 1)


def _payload_start(frame_count: int) -> int:
    return _aligned(_HEADER.size + frame_count * _FRAME.size)


def frames_capacity(frames: Sequence[Optional[np.ndarray]]) -> int:
    """Bytes needed to hold one message carrying ``frames``."""
    total = _payload_start(len(frames))
    for frame in frames:
        if frame is not None:
            total += _aligned(frame.nbytes)
    return total


def capacity_for(shapes: Sequence[tuple[int, object]]) -> int:
    """Bytes needed for a message of ``(length, dtype)`` frames.

    Lets the driver pre-size a *reply* arena from what it knows — the
    reply's fresh-infection frame can never exceed the tick's target
    count — without materializing placeholder arrays.
    """
    total = _payload_start(len(shapes))
    for length, dtype in shapes:
        total += _aligned(length * np.dtype(dtype).itemsize)  # type: ignore[arg-type]
    return total


def write_frames(
    buf: memoryview, epoch: int, frames: Sequence[Optional[np.ndarray]]
) -> int:
    """Serialize one message into ``buf``; returns bytes used.

    The payload is written before the header, and the header (with its
    epoch) last — a reader racing this write sees a stale epoch, never
    a half-written frame under a current one.
    """
    needed = frames_capacity(frames)
    if needed > len(buf):
        raise ShmProtocolError(
            f"message needs {needed} bytes but the segment maps "
            f"{len(buf)} — the owner must grow before writing"
        )
    offset = _payload_start(len(frames))
    table: list[tuple[int, int]] = []
    for frame in frames:
        if frame is None:
            table.append((-1, 0))
            continue
        code = _CODE_BY_DTYPE.get(frame.dtype.str)
        if code is None:
            raise ValueError(
                f"dtype {frame.dtype} is not in the shmem wire format"
            )
        flat = frame.ravel()
        dest = np.frombuffer(
            buf, dtype=frame.dtype, count=flat.size, offset=offset
        )
        np.copyto(dest, flat, casting="no")
        table.append((code, flat.size))
        offset += _aligned(flat.nbytes)
    for index, (code, length) in enumerate(table):
        _FRAME.pack_into(
            buf, _HEADER.size + index * _FRAME.size, code, length
        )
    _HEADER.pack_into(buf, 0, MAGIC, VERSION, epoch, len(frames))
    return offset


def read_frames(
    buf: memoryview, expected_epoch: int
) -> list[Optional[np.ndarray]]:
    """Validate and deserialize one message from ``buf``.

    Returned arrays are *views into the segment* — loans, valid until
    the owner's next write (one tick).  Copy anything kept longer.
    Raises :class:`ShmProtocolError` on any validation failure.
    """
    if len(buf) < _HEADER.size:
        raise ShmProtocolError(
            f"segment maps only {len(buf)} bytes — no room for a header"
        )
    magic, version, epoch, frame_count = _HEADER.unpack_from(buf, 0)
    if magic != MAGIC:
        raise ShmProtocolError(
            f"bad magic {magic:#010x} (expected {MAGIC:#010x}) — "
            "garbled or foreign segment"
        )
    if version != VERSION:
        raise ShmProtocolError(
            f"protocol version {version} (expected {VERSION})"
        )
    if epoch != expected_epoch:
        raise ShmProtocolError(
            f"epoch {epoch} but tick expects {expected_epoch} — stale "
            "or racing message"
        )
    if frame_count > _MAX_FRAMES:
        raise ShmProtocolError(
            f"frame count {frame_count} exceeds the protocol maximum "
            f"{_MAX_FRAMES} — garbled header"
        )
    offset = _payload_start(frame_count)
    if offset > len(buf):
        raise ShmProtocolError("frame table extends past the segment")
    frames: list[Optional[np.ndarray]] = []
    for index in range(frame_count):
        code, length = _FRAME.unpack_from(
            buf, _HEADER.size + index * _FRAME.size
        )
        if code == -1:
            frames.append(None)
            continue
        if not 0 <= code < len(_DTYPES):
            raise ShmProtocolError(
                f"frame {index}: unknown dtype code {code}"
            )
        if length < 0:
            raise ShmProtocolError(
                f"frame {index}: negative length {length}"
            )
        dtype = _DTYPES[code]
        nbytes = length * dtype.itemsize
        if offset + nbytes > len(buf):
            raise ShmProtocolError(
                f"frame {index}: {nbytes} bytes at offset {offset} "
                f"run past the {len(buf)}-byte segment — truncated"
            )
        frames.append(
            np.frombuffer(buf, dtype=dtype, count=length, offset=offset)
        )
        offset += _aligned(nbytes)
    return frames


def _create_segment(tag: str, capacity: int) -> "SharedMemory":
    """A fresh named segment; names are ``rs<pid>-<seq>-<tag>``.

    The sequence counter makes names unique within a process and the
    pid across processes; a collision with a segment leaked by a
    *previous* pid-reusing process just advances the counter.
    """
    if _shared_memory is None:  # pragma: no cover - guarded by callers
        raise ShmProtocolError("shared memory is unavailable here")
    while True:
        name = f"{NAME_PREFIX}{os.getpid()}-{next(_NAME_SEQUENCE)}-{tag}"
        try:
            return _shared_memory.SharedMemory(
                name=name, create=True, size=capacity
            )
        except FileExistsError:  # pragma: no cover - pid-reuse relic
            continue


@contextmanager
def _tracker_bypass() -> Iterator[None]:
    """Keep one shared-memory op out of the resource tracker's books.

    Used for worker-side :func:`attach` on Python <= 3.12 (which has
    no ``track=False``): under the default fork start method the
    worker shares the driver's tracker process, so registering an
    attachment would put the segment's name into the same set the
    driver's eventual ``unlink`` removes it from — and whichever side
    acts second trips a KeyError inside the tracker.  Under spawn the
    worker gets its *own* tracker, which would "clean up" (unlink!)
    segments the driver still uses.  Driver-side create/unlink stays
    tracked normally, so a hard-killed driver still gets its segments
    reclaimed at tracker shutdown.
    """
    try:
        from multiprocessing import resource_tracker
    except ImportError:  # pragma: no cover - exotic platforms only
        yield
        return
    original = resource_tracker.register

    def _register_except_shm(name: str, rtype: str) -> None:
        if rtype != "shared_memory":
            original(name, rtype)

    resource_tracker.register = _register_except_shm  # type: ignore[assignment]
    try:
        yield
    finally:
        resource_tracker.register = original  # type: ignore[assignment]


def attach(name: str) -> "SharedMemory":
    """Map an existing segment *without* resource-tracker ownership.

    The creating (driver) process owns unlink; tracking the same name
    again from a worker makes Python's resource tracker complain
    about — or worse, act on — "leaked" segments at exit.
    """
    if _shared_memory is None:  # pragma: no cover - guarded by callers
        raise ShmProtocolError("shared memory is unavailable here")
    try:
        # Python >= 3.13 supports opting out directly.
        return _shared_memory.SharedMemory(name=name, track=False)  # type: ignore[call-arg]
    except TypeError:
        with _tracker_bypass():
            return _shared_memory.SharedMemory(name=name)


class ShmArena:
    """One owned, named, geometrically-grown shared-memory segment.

    The owner (always the shard driver) writes messages with
    :meth:`write` / pre-sizes with :meth:`ensure`; growth allocates a
    doubled replacement under a new name and unlinks the retired one.
    :meth:`close` unlinks unconditionally and is idempotent — it runs
    from ``ShardPool.close``, the pool-failure path, context-manager
    exit, and ``__del__``, whichever comes first.
    """

    __slots__ = ("tag", "_segment", "_closed")

    def __init__(self, tag: str, capacity: int = MIN_CAPACITY) -> None:
        self.tag = tag
        self._segment = _create_segment(tag, max(capacity, MIN_CAPACITY))
        self._closed = False

    @property
    def name(self) -> str:
        """The segment's name (what a worker passes to :func:`attach`)."""
        return self._segment.name

    @property
    def capacity(self) -> int:
        """Mapped bytes available for one message."""
        return self._segment.size

    def ensure(self, nbytes: int) -> bool:
        """Grow to hold ``nbytes`` (at least doubling); True if grown."""
        if self._closed:
            raise ShmProtocolError(f"arena {self.tag} is closed")
        if nbytes <= self._segment.size:
            return False
        replacement = _create_segment(
            self.tag, max(nbytes, 2 * self._segment.size)
        )
        self._unlink_current()
        self._segment = replacement
        return True

    def write(
        self, epoch: int, frames: Sequence[Optional[np.ndarray]]
    ) -> None:
        """Grow as needed, then serialize one message."""
        self.ensure(frames_capacity(frames))
        write_frames(self._segment.buf, epoch, frames)

    def read(
        self, epoch: int, copy: bool = True
    ) -> list[Optional[np.ndarray]]:
        """Deserialize the current message.

        Copies by default: a view into an owned segment would pin its
        mapping (``BufferError`` on close) and go stale on growth.
        Pass ``copy=False`` only for use-and-drop access within one
        tick.
        """
        if self._closed:
            raise ShmProtocolError(f"arena {self.tag} is closed")
        frames = read_frames(self._segment.buf, epoch)
        if not copy:
            return frames
        return [
            None if frame is None else frame.copy() for frame in frames
        ]

    def _unlink_current(self) -> None:
        segment = self._segment
        try:
            segment.close()
        except BufferError:
            # A loaned view is still alive somewhere; the mapping must
            # outlive it.  Retire the object (bounded by the growth
            # count) and let interpreter exit reclaim the memory — the
            # name is still unlinked below, so nothing leaks on disk.
            #
            # Looked up via globals(): at interpreter shutdown this
            # runs from __del__ *after* the module's globals may have
            # been cleared to None, and a bare name reference would
            # raise — aborting before the unlink below and leaking the
            # segment on disk.  Losing the retire list itself is fine
            # then (the process is exiting; the OS unmaps everything).
            retired = globals().get("_RETIRED_SEGMENTS")
            if retired is not None:
                retired.append(segment)
        try:
            segment.unlink()
        except FileNotFoundError:  # noqa: RP007 — already unlinked (tracker or a racing close); the goal state
            pass

    def close(self) -> None:
        """Unmap and unlink; safe to call repeatedly."""
        if self._closed:
            return
        self._closed = True
        self._unlink_current()

    def __enter__(self) -> "ShmArena":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC-order dependent
        try:
            self.close()
        except Exception:  # noqa: RP007 — interpreter-teardown close; nothing left to tell
            pass


class ShmDoubleBuffer:
    """An epoch-parity pair of :class:`ShmArena` buffers.

    The §4.12 frame protocol tags every message with its epoch, and
    the shard pool advances the epoch once per tick — so parity
    (``epoch & 1``) deterministically alternates buffers between
    consecutive ticks.  Staging tick ``N + 1`` therefore never touches
    the buffer holding tick ``N``'s message: a reader still pinning
    tick ``N``'s frames (a zero-copy loan, or a worker racing a
    doorbell) keeps seeing the *old epoch's intact message*, never a
    torn frame, and an expected-epoch read of the wrong buffer fails
    loudly as a stale-epoch :class:`ShmProtocolError`.

    Growth and retirement are per buffer: each side grows
    independently through :meth:`ShmArena.ensure`, and the
    BufferError-safe retirement path (``_RETIRED_SEGMENTS``) covers
    the standby buffer exactly like the active one — a loaned view
    into either side pins only that side's old mapping.
    """

    __slots__ = ("tag", "_buffers", "_closed")

    def __init__(self, tag: str, capacity: int = MIN_CAPACITY) -> None:
        self.tag = tag
        self._buffers = (
            ShmArena(f"{tag}a", capacity),
            ShmArena(f"{tag}b", capacity),
        )
        self._closed = False

    def arena(self, epoch: int) -> ShmArena:
        """The buffer carrying (or about to carry) ``epoch``."""
        if self._closed:
            raise ShmProtocolError(f"double buffer {self.tag} is closed")
        return self._buffers[epoch & 1]

    def ensure(self, epoch: int, nbytes: int) -> bool:
        """Grow ``epoch``'s buffer to hold ``nbytes``; True if grown."""
        return self.arena(epoch).ensure(nbytes)

    def write(
        self, epoch: int, frames: Sequence[Optional[np.ndarray]]
    ) -> None:
        """Stage one message into ``epoch``'s buffer."""
        self.arena(epoch).write(epoch, frames)

    def read(
        self, epoch: int, copy: bool = True
    ) -> list[Optional[np.ndarray]]:
        """Deserialize ``epoch``'s message from its parity buffer."""
        return self.arena(epoch).read(epoch, copy=copy)

    def close(self) -> None:
        """Unlink both buffers; safe to call repeatedly."""
        if self._closed:
            return
        self._closed = True
        for buffer in self._buffers:
            buffer.close()

    def __enter__(self) -> "ShmDoubleBuffer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC-order dependent
        try:
            self.close()
        except Exception:  # noqa: RP007 — interpreter-teardown close; nothing left to tell
            pass


__all__ = [
    "MAGIC",
    "MIN_CAPACITY",
    "NAME_PREFIX",
    "VERSION",
    "ShmArena",
    "ShmDoubleBuffer",
    "ShmProtocolError",
    "attach",
    "capacity_for",
    "frames_capacity",
    "read_frames",
    "shared_memory_available",
    "write_frames",
]
