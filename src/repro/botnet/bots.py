"""From captured commands to running worms.

Bots "typically wait for commands from a bot controller to initiate
propagation" — so a parsed scan command plus a set of bot hosts is
exactly a hit-list worm outbreak.  :class:`BotController` is the
controller-side view used by the simulation experiments.
"""

from __future__ import annotations

import numpy as np

from repro.botnet.commands import BotScanCommand, parse_command
from repro.net.cidr import BlockSet
from repro.worms.hitlist import HitListWorm


def worm_for_command(command: BotScanCommand) -> HitListWorm:
    """The hit-list worm a bot population executes for a command."""
    return HitListWorm(BlockSet([command.hitlist_block()]))


class BotController:
    """A bot herder: owns bots, issues scan commands.

    Parameters
    ----------
    bot_addrs:
        Addresses of the controlled (already compromised) hosts.
    """

    def __init__(self, bot_addrs: np.ndarray):
        bot_addrs = np.asarray(bot_addrs, dtype=np.uint32)
        if not len(bot_addrs):
            raise ValueError("a botnet needs at least one bot")
        self.bot_addrs = bot_addrs
        self.issued: list[BotScanCommand] = []

    @property
    def size(self) -> int:
        """Number of bots under control."""
        return len(self.bot_addrs)

    def issue(self, command_text: str) -> BotScanCommand:
        """Parse and record a propagation command."""
        command = parse_command(command_text)
        self.issued.append(command)
        return command

    def scan_targets(
        self,
        command: BotScanCommand,
        scans_per_bot: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Targets the botnet probes for a command, per bot.

        Returns shape ``(num_bots, scans_per_bot)``.
        """
        worm = worm_for_command(command)
        state = worm.new_state()
        worm.add_hosts(state, self.bot_addrs, rng)
        return worm.generate(state, scans_per_bot, rng)

    def aggregate_hitlist(self) -> BlockSet:
        """Union of every issued command's target block."""
        return BlockSet(command.hitlist_block() for command in self.issued)
