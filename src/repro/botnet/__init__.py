"""Botnet command capture, parsing, and propagation.

The paper's Table 1 evidence: bot-controller commands captured on a
live /15 academic network instruct bots to scan specific address
ranges — hit-lists in the wild.  This package implements the command
grammars of the bot families the paper monitors (Agobot/Phatbot's
``advscan``, rbot/SDBot's ``ipscan``), a synthetic IRC capture corpus
standing in for the proprietary network trace, the extractor that
pulls propagation commands out of payloads, and the bridge from a
parsed command to a running :class:`~repro.worms.hitlist.HitListWorm`.
"""

from repro.botnet.bots import BotController, worm_for_command
from repro.botnet.commands import (
    BotScanCommand,
    OctetPattern,
    anonymize_command,
    parse_command,
)
from repro.botnet.corpus import CaptureLine, extract_commands, synthesize_capture

__all__ = [
    "BotController",
    "BotScanCommand",
    "CaptureLine",
    "OctetPattern",
    "anonymize_command",
    "extract_commands",
    "parse_command",
    "synthesize_capture",
    "worm_for_command",
]
