"""Synthetic IRC capture corpus and command extraction.

The paper gathers bot commands by watching the payloads of traffic on
a live /15 academic network (~10,000 hosts) for the command signatures
of Agobot/Phatbot, rbot/SDBot, and Ghost-Bot.  The trace itself is
proprietary, so :func:`synthesize_capture` produces an IRC-style
capture with the same structure: controller channels issuing scan
commands to bots, buried in chatter; :func:`extract_commands` is the
signature matcher that recovers them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.botnet.commands import (
    KNOWN_EXPLOITS,
    BotScanCommand,
    OctetPattern,
    parse_command,
)

_CHATTER = (
    "PING :irc.example.net",
    "PRIVMSG #chat :anyone around?",
    "JOIN #warez",
    "NOTICE AUTH :*** Looking up your hostname...",
    "PRIVMSG #help :how do i set my quit message",
    "MODE #chat +nt",
    "QUIT :Connection reset by peer",
)

#: Prefixes bot herders favour (academic and broadband space the
#: paper observes being targeted, e.g. "address ranges known to
#: contain live hosts such as academic networks").
_FAVOURED_FIRST_OCTETS = (128, 129, 130, 131, 192, 194, 24, 66, 141)


@dataclass(frozen=True)
class CaptureLine:
    """One captured payload line."""

    timestamp: float
    source_bot: int
    payload: str


def _random_pattern(rng: np.random.Generator) -> OctetPattern:
    """A plausible bot hit-list pattern (mostly /8 and /16 targets)."""
    depth = int(rng.choice([1, 2, 2, 3, 4], p=[0.25, 0.35, 0.2, 0.15, 0.05]))
    octets: list[Optional[int]] = [int(rng.choice(_FAVOURED_FIRST_OCTETS))]
    for _ in range(depth - 1):
        octets.append(int(rng.integers(0, 256)))
    octets.extend([None] * (4 - len(octets)))
    return OctetPattern(tuple(octets))


def synthesize_scan_command(rng: np.random.Generator) -> BotScanCommand:
    """One random, valid propagation command in either dialect."""
    exploit = str(rng.choice(sorted(KNOWN_EXPLOITS)))
    flags_pool = ["-s", "-b", "-r"]
    num_flags = int(rng.integers(0, 3))
    flags = tuple(
        str(f) for f in rng.choice(flags_pool, size=num_flags, replace=False)
    )
    if rng.random() < 0.6:
        return BotScanCommand("ipscan", exploit, _random_pattern(rng), flags)
    pattern = (
        _random_pattern(rng)
        if rng.random() < 0.7
        else OctetPattern((None, None, None, None))
    )
    return BotScanCommand(
        "advscan",
        exploit,
        pattern,
        flags,
        threads=int(rng.choice([50, 100, 150, 200])),
        delay=int(rng.choice([3, 5, 7])),
    )


def synthesize_capture(
    num_bots: int,
    commands_per_bot: tuple[int, int],
    rng: np.random.Generator,
    chatter_ratio: float = 10.0,
    duration_seconds: float = 30 * 86_400.0,
) -> list[CaptureLine]:
    """An IRC-style capture: scan commands drowned in channel noise.

    ``num_bots`` controllers each issue a few commands (the paper saw
    "approximately 11 bots" in a month); ``chatter_ratio`` noise lines
    are interleaved per command line.
    """
    if num_bots < 1:
        raise ValueError("need at least one bot")
    lines: list[CaptureLine] = []
    for bot in range(num_bots):
        count = int(rng.integers(commands_per_bot[0], commands_per_bot[1] + 1))
        for _ in range(count):
            command = synthesize_scan_command(rng)
            timestamp = float(rng.uniform(0, duration_seconds))
            lines.append(
                CaptureLine(
                    timestamp,
                    bot,
                    f":controller!u@h PRIVMSG #{bot:02d} :.{command.render()}",
                )
            )
    num_chatter = int(len(lines) * chatter_ratio)
    for _ in range(num_chatter):
        payload = str(rng.choice(_CHATTER))
        lines.append(
            CaptureLine(
                float(rng.uniform(0, duration_seconds)),
                int(rng.integers(0, num_bots)),
                payload,
            )
        )
    lines.sort(key=lambda line: line.timestamp)
    return lines


def extract_commands(
    capture: Sequence[CaptureLine],
) -> list[tuple[CaptureLine, BotScanCommand]]:
    """Signature-match scan commands out of a payload capture.

    Mirrors the paper's methodology: look for the specific command
    signatures (``advscan`` / ``ipscan``) inside payloads and extract
    "the specific parts of the commands instructing bots to start
    propagating".
    """
    extracted = []
    for line in capture:
        payload = line.payload
        for signature in ("advscan", "ipscan"):
            index = payload.find(signature)
            if index == -1:
                continue
            try:
                command = parse_command(payload[index:])
            except ValueError:
                continue
            extracted.append((line, command))
            break
    return extracted
