"""Bot propagation-command grammar.

Two dialects cover the families the paper monitors:

* **rbot/SDBot**: ``ipscan <pattern> <exploit> [flags...]``
  e.g. ``ipscan 194.27.x.x dcom2 -s``
* **Agobot/Phatbot**: ``advscan <exploit> [threads] [delay] [pattern] [flags...]``
  e.g. ``advscan lsass 200 5 0 -r -b -s`` or
  ``advscan dcom2 100 3 128.32.x.x -s``

An address *pattern* is up to four dot-separated octet positions,
each a literal number or a wildcard (``x``).  Literal octets form the
fixed prefix; trailing wildcards are scanned — i.e. the pattern *is*
a hit-list prefix.  A pattern with fewer than four positions implies
trailing wildcards (``194.27`` ≡ ``194.27.x.x``).  Agobot's ``0``
pattern means "no restriction" (scan everything).

The paper prints captured commands with octets anonymized to letters
(``194.s.s.s``); :func:`anonymize_command` renders the same style so
the Table 1 reproduction is visually comparable.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Optional

from repro.net.cidr import CIDRBlock

#: Exploit modules seen in the paper's Table 1 commands.
KNOWN_EXPLOITS = frozenset(
    {
        "dcom2",
        "dcass",
        "lsass",
        "wkssvceng",
        "mssql2000",
        "webdav3",
        "netbios",
        "ntpass",
    }
)

_WILDCARDS = {"x", "X", "*", "s", "i", "r"}


@dataclass(frozen=True)
class OctetPattern:
    """A dotted octet pattern like ``194.27.x.x``.

    ``octets`` holds literal values or ``None`` for wildcards; short
    patterns are padded with trailing wildcards.
    """

    octets: tuple[Optional[int], ...]

    def __post_init__(self) -> None:
        if len(self.octets) != 4:
            raise ValueError("octet patterns are exactly four positions")
        seen_wildcard = False
        for octet in self.octets:
            if octet is None:
                seen_wildcard = True
            else:
                if seen_wildcard:
                    raise ValueError(
                        "literal octets after a wildcard are not scannable "
                        "as a prefix hit-list"
                    )
                if not 0 <= octet <= 255:
                    raise ValueError(f"octet out of range: {octet}")

    @classmethod
    def parse(cls, text: str) -> "OctetPattern":
        """Parse ``a.b.x.x`` style text (short forms padded)."""
        parts = text.strip().split(".")
        if not 1 <= len(parts) <= 4:
            raise ValueError(f"bad octet pattern: {text!r}")
        octets: list[Optional[int]] = []
        for part in parts:
            if part in _WILDCARDS:
                octets.append(None)
            elif part.isdigit():
                octets.append(int(part))
            else:
                raise ValueError(f"bad octet {part!r} in pattern {text!r}")
        octets.extend([None] * (4 - len(octets)))
        return cls(tuple(octets))

    @property
    def prefix_len(self) -> int:
        """Bits pinned by literal octets (0, 8, 16, 24 or 32)."""
        fixed = sum(1 for octet in self.octets if octet is not None)
        return fixed * 8

    def to_block(self) -> CIDRBlock:
        """The CIDR block this pattern scans."""
        network = 0
        for octet in self.octets:
            network = (network << 8) | (octet or 0)
        return CIDRBlock(network, self.prefix_len)

    def __str__(self) -> str:
        return ".".join(
            "x" if octet is None else str(octet) for octet in self.octets
        )


@dataclass(frozen=True)
class BotScanCommand:
    """A parsed propagation command."""

    dialect: str  # "ipscan" | "advscan"
    exploit: str
    pattern: OctetPattern
    flags: tuple[str, ...]
    threads: Optional[int] = None
    delay: Optional[int] = None

    def hitlist_block(self) -> CIDRBlock:
        """The address block this command restricts scanning to."""
        return self.pattern.to_block()

    def render(self) -> str:
        """Back to command-line text."""
        flag_text = (" " + " ".join(self.flags)) if self.flags else ""
        if self.dialect == "ipscan":
            return f"ipscan {self.pattern} {self.exploit}{flag_text}"
        pattern = "0" if self.pattern.prefix_len == 0 else str(self.pattern)
        return (
            f"advscan {self.exploit} {self.threads} {self.delay} "
            f"{pattern}{flag_text}"
        )


_FLAG_RE = re.compile(r"^-[a-z]$")
_ANY_PATTERN = OctetPattern((None, None, None, None))


def parse_command(text: str) -> BotScanCommand:
    """Parse one propagation command in either dialect.

    Raises ``ValueError`` for anything that is not a recognizable
    scan command (callers use this as the detection signature).
    """
    tokens = text.strip().lstrip(".").split()
    if not tokens:
        raise ValueError("empty command")
    dialect = tokens[0].lower()
    if dialect == "ipscan":
        return _parse_ipscan(tokens)
    if dialect == "advscan":
        return _parse_advscan(tokens)
    raise ValueError(f"not a scan command: {text!r}")


def _split_flags(tokens: list[str]) -> tuple[list[str], tuple[str, ...]]:
    body = list(tokens)
    flags: list[str] = []
    while body and _FLAG_RE.match(body[-1]):
        flags.append(body.pop())
    return body, tuple(reversed(flags))


def _parse_ipscan(tokens: list[str]) -> BotScanCommand:
    body, flags = _split_flags(tokens[1:])
    if len(body) != 2:
        raise ValueError(f"ipscan needs a pattern and an exploit: {tokens!r}")
    pattern = OctetPattern.parse(body[0])
    exploit = body[1].lower()
    if exploit not in KNOWN_EXPLOITS:
        raise ValueError(f"unknown exploit module: {exploit!r}")
    return BotScanCommand("ipscan", exploit, pattern, flags)


def _parse_advscan(tokens: list[str]) -> BotScanCommand:
    body, flags = _split_flags(tokens[1:])
    if not body:
        raise ValueError("advscan needs an exploit")
    exploit = body[0].lower()
    if exploit not in KNOWN_EXPLOITS:
        raise ValueError(f"unknown exploit module: {exploit!r}")
    threads = int(body[1]) if len(body) > 1 else 100
    delay = int(body[2]) if len(body) > 2 else 5
    pattern = _ANY_PATTERN
    if len(body) > 3 and body[3] != "0":
        pattern = OctetPattern.parse(body[3])
    return BotScanCommand("advscan", exploit, pattern, flags, threads, delay)


def anonymize_command(command: BotScanCommand) -> str:
    """Render a command with octets anonymized, Table 1 style.

    Literal octets below 128 that are not well-known scan prefixes
    are replaced by ``s`` (subnet), mirroring how the paper masks the
    targeted networks while keeping recognizable first octets.
    """
    octet_texts = []
    for index, octet in enumerate(command.pattern.octets):
        if octet is None:
            break
        if index == 0 and octet >= 128:
            octet_texts.append(str(octet))
        else:
            octet_texts.append("s")
    pattern_text = ".".join(octet_texts) if octet_texts else "0"
    flag_text = (" " + " ".join(command.flags)) if command.flags else ""
    if command.dialect == "ipscan":
        return f"ipscan {pattern_text} {command.exploit}{flag_text}"
    return (
        f"advscan {command.exploit} {command.threads} {command.delay} "
        f"{pattern_text}{flag_text}"
    )
