"""Hotspots: a reproduction of Cooke, Mao & Jahanian (DSN 2006).

*Hotspots* are deviations from uniform self-propagating-malware
targeting.  This library reimplements the paper's entire stack:

* bit-exact worm target generators (CodeRedII, Slammer, Blaster,
  hit-list bots) in :mod:`repro.worms`;
* the PRNG forensics behind them (LCG cycle theory, MS CRT ``rand``,
  boot-time entropy) in :mod:`repro.prng`;
* the network environment (NATs/private space, filtering policy,
  failures, topology) in :mod:`repro.env`;
* darknet sensors and distributed detection in :mod:`repro.sensors`;
* synthetic vulnerable populations and allocations in
  :mod:`repro.population`;
* the vectorized outbreak simulator in :mod:`repro.sim`;
* hotspot metrics and case-study forensics in :mod:`repro.analysis`;
* and one runnable module per paper table/figure in
  :mod:`repro.experiments`.

Quick start::

    import numpy as np
    from repro import CodeRedIIWorm

    worm = CodeRedIIWorm()
    targets = worm.single_host_targets(
        source=0xC0A80064, scans=10_000, rng=np.random.default_rng(0)
    )
"""

from repro.analysis import hotspot_report
from repro.env import NetworkEnvironment
from repro.net import BlockSet, CIDRBlock, format_addr, parse_addr
from repro.population import (
    HostPopulation,
    PopulationSpec,
    synthesize_clustered_population,
)
from repro.sensors import DarknetSensor, SensorGrid, ims_standard_deployment
from repro.sim import EpidemicSimulator, SimulationConfig
from repro.worms import (
    BlasterWorm,
    CodeRedIIWorm,
    HitListWorm,
    LocalPreferenceWorm,
    PermutationScanWorm,
    SlammerWorm,
    UniformScanWorm,
    build_greedy_hitlist,
)

__version__ = "1.0.0"

__all__ = [
    "BlasterWorm",
    "BlockSet",
    "CIDRBlock",
    "CodeRedIIWorm",
    "DarknetSensor",
    "EpidemicSimulator",
    "HitListWorm",
    "HostPopulation",
    "LocalPreferenceWorm",
    "NetworkEnvironment",
    "PermutationScanWorm",
    "PopulationSpec",
    "SensorGrid",
    "SimulationConfig",
    "SlammerWorm",
    "UniformScanWorm",
    "build_greedy_hitlist",
    "format_addr",
    "hotspot_report",
    "ims_standard_deployment",
    "parse_addr",
    "synthesize_clustered_population",
]
