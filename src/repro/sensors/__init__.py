"""Darknet sensors, distributed deployments, and detection logic.

Models the Internet Motion Sensor (IMS) substrate the paper measures
with: darknet blocks that record scan traffic, per-/24 observation
histograms with unique-source tracking, grids of thousands of small
/24 sensors with threshold alerting, and the quorum detection logic
whose blindness to hotspots is the paper's headline result.
"""

from repro.sensors.darknet import DarknetSensor, ims_standard_deployment
from repro.sensors.deployment import (
    SensorGrid,
    place_one_per_block,
    place_random,
    place_within_blocks,
)
from repro.sensors.detection import AlertTimeline, quorum_detection_time
from repro.sensors.earlywarning import ExponentialTrendDetector, TrendAlarm
from repro.sensors.index import SensorIndex
from repro.sensors.identification import (
    IdentificationOutcome,
    PayloadIdentifier,
    Transport,
    WormSignature,
)

__all__ = [
    "AlertTimeline",
    "DarknetSensor",
    "ExponentialTrendDetector",
    "IdentificationOutcome",
    "PayloadIdentifier",
    "SensorGrid",
    "SensorIndex",
    "Transport",
    "TrendAlarm",
    "WormSignature",
    "ims_standard_deployment",
    "place_one_per_block",
    "place_random",
    "place_within_blocks",
    "quorum_detection_time",
]
