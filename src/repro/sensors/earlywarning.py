"""Trend-based early warning on darknet time series.

The paper contrasts its quorum/threshold detectors with monitoring
systems like Zou et al.'s, which watch the *aggregate* scan-traffic
time series at a monitor and alarm on sustained exponential growth
(the signature of an epidemic's early phase).

:class:`ExponentialTrendDetector` implements that check: it keeps a
sliding window of per-interval probe counts, fits a log-linear trend,
and alarms when the growth rate is positive, statistically stable,
and sustained over enough intervals.  Hotspots attack this detector
the same way they attack quorums: a monitor outside the hotspot sees
a flat (empty) series no matter how fast the worm grows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np


@dataclass(frozen=True)
class TrendAlarm:
    """An early-warning alarm."""

    time: float
    growth_rate: float
    window_counts: tuple[int, ...]


class ExponentialTrendDetector:
    """Alarms on sustained exponential growth in observed counts.

    Parameters
    ----------
    window:
        Number of most recent intervals considered.
    min_growth_rate:
        Per-interval exponential rate required (e.g. 0.05 = +5% per
        interval).
    min_count:
        Ignore windows whose total observations are below this (noise
        guard — darknets see background radiation).
    min_rising_intervals:
        Consecutive rising-trend checks required before alarming.
    """

    def __init__(
        self,
        window: int = 10,
        min_growth_rate: float = 0.05,
        min_count: int = 20,
        min_rising_intervals: int = 3,
    ):
        if window < 3:
            raise ValueError("window must be at least 3 intervals")
        if min_growth_rate <= 0:
            raise ValueError("min_growth_rate must be positive")
        if min_rising_intervals < 1:
            raise ValueError("min_rising_intervals must be at least 1")
        self.window = window
        self.min_growth_rate = min_growth_rate
        self.min_count = min_count
        self.min_rising_intervals = min_rising_intervals
        self._counts: list[int] = []
        self._times: list[float] = []
        self._rising_streak = 0
        self.alarm: Optional[TrendAlarm] = None

    def observe_interval(self, time: float, count: int) -> Optional[TrendAlarm]:
        """Feed one interval's probe count; returns the alarm if it fires."""
        if count < 0:
            raise ValueError("counts must be non-negative")
        self._counts.append(int(count))
        self._times.append(float(time))
        if self.alarm is not None:
            return self.alarm

        recent = self._counts[-self.window :]
        if len(recent) < self.window or sum(recent) < self.min_count:
            self._rising_streak = 0
            return None

        rate = self._fit_growth_rate(recent)
        if rate >= self.min_growth_rate:
            self._rising_streak += 1
        else:
            self._rising_streak = 0

        if self._rising_streak >= self.min_rising_intervals:
            self.alarm = TrendAlarm(
                time=time,
                growth_rate=rate,
                window_counts=tuple(recent),
            )
        return self.alarm

    @staticmethod
    def _fit_growth_rate(counts: list[int]) -> float:
        """Log-linear slope of the (smoothed) count series."""
        values = np.asarray(counts, dtype=float) + 1.0  # log-safe
        x = np.arange(len(values), dtype=float)
        slope, _ = np.polyfit(x, np.log(values), 1)
        return float(slope)

    @property
    def alarmed(self) -> bool:
        """Whether the alarm has fired."""
        return self.alarm is not None

    def reset(self) -> None:
        """Clear history and any latched alarm."""
        self._counts.clear()
        self._times.clear()
        self._rising_streak = 0
        self.alarm = None
