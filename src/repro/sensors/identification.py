"""Worm identification at the sensor — the IMS active responder.

The paper's sensors "actively responded to TCP SYN packets with a
SYN-ACK packet to elicit the first data payload on all TCP streams.
This approach provided the necessary payload data to uniquely
identify the threats studied in this paper."

The distinction matters: a **UDP** worm (Slammer) carries its payload
in the very first packet, so any passive darknet identifies it; a
**TCP** worm (CodeRedII, Blaster) only reveals a payload after the
handshake, so a passive sensor sees anonymous SYNs.  This module
models that pipeline: per-worm transport/signature registry, passive
vs active sensor modes, and the identification outcome per probe.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Mapping, Optional

import numpy as np


class Transport(enum.Enum):
    """Transport the worm's first infection packet uses."""

    TCP = "tcp"
    UDP = "udp"


@dataclass(frozen=True)
class WormSignature:
    """What a sensor needs to recognize one threat."""

    name: str
    transport: Transport
    port: int
    payload_marker: str


#: The threats the paper identifies at its sensors.
KNOWN_SIGNATURES: Mapping[str, WormSignature] = {
    "codered2": WormSignature(
        "codered2", Transport.TCP, 80, "GET /default.ida?XXXX"
    ),
    "slammer": WormSignature("slammer", Transport.UDP, 1434, "\x04\x01\x01"),
    "blaster": WormSignature(
        "blaster", Transport.TCP, 135, "DCOM RPC overflow"
    ),
}


class IdentificationOutcome(enum.Enum):
    """What the sensor learned from one probe."""

    IDENTIFIED = "identified"        # payload seen and matched
    UNIDENTIFIED_SYN = "syn-only"    # TCP SYN, no payload elicited
    UNKNOWN_PAYLOAD = "unknown"      # payload seen, no signature match


class PayloadIdentifier:
    """Sensor-side identification pipeline.

    Parameters
    ----------
    active_responder:
        ``True`` models the IMS behaviour (SYN-ACK elicitation, TCP
        payloads recovered); ``False`` models a passive darknet that
        only identifies self-contained UDP threats.
    signatures:
        The signature registry (defaults to the paper's threats).
    """

    def __init__(
        self,
        active_responder: bool = True,
        signatures: Optional[Mapping[str, WormSignature]] = None,
    ):
        self.active_responder = active_responder
        self.signatures = dict(
            signatures if signatures is not None else KNOWN_SIGNATURES
        )

    def identify(self, worm_name: str) -> IdentificationOutcome:
        """Outcome for one probe from a worm (by its true name)."""
        signature = self.signatures.get(worm_name)
        if signature is None:
            return IdentificationOutcome.UNKNOWN_PAYLOAD
        if signature.transport is Transport.TCP and not self.active_responder:
            return IdentificationOutcome.UNIDENTIFIED_SYN
        return IdentificationOutcome.IDENTIFIED

    def identify_batch(self, worm_names: np.ndarray) -> np.ndarray:
        """Boolean mask of probes the sensor can attribute to a threat."""
        worm_names = np.asarray(worm_names)
        out = np.zeros(worm_names.shape, dtype=bool)
        for name in np.unique(worm_names):
            outcome = self.identify(str(name))
            out[worm_names == name] = (
                outcome is IdentificationOutcome.IDENTIFIED
            )
        return out

    def identification_rate(self, worm_name: str, probes: int) -> int:
        """How many of ``probes`` from a worm the sensor attributes."""
        if probes < 0:
            raise ValueError("probes must be non-negative")
        if self.identify(worm_name) is IdentificationOutcome.IDENTIFIED:
            return probes
        return 0
