"""Darknet (blackhole / network telescope) sensors.

A darknet is a routed but unused address block: any packet arriving
there is misconfiguration, backscatter, or scanning.  The IMS sensors
the paper deploys additionally answer TCP SYNs to elicit payloads,
which lets them identify which worm sent a probe; for simulation
purposes a probe arriving at the block *is* an identified observation.

:class:`DarknetSensor` records, per destination /24 inside its block,
both raw probe counts and unique source addresses — the quantities
plotted in Figures 1, 2, 3 and 4.
"""

from __future__ import annotations

from typing import Mapping, Optional

import numpy as np

from repro.net.cidr import CIDRBlock

#: Pending unique (source, bin) pairs tolerated before the per-batch
#: chunks are merged; bounds both memory and the worst-case merge.
PAIR_COMPACT_THRESHOLD = 262_144


class DarknetSensor:
    """One monitored address block with per-/24 accounting.

    Parameters
    ----------
    name:
        Label, e.g. ``"D"`` for the paper's D/20 block.
    block:
        The monitored CIDR block (must be /24 or larger to have /24
        sub-bins; smaller blocks get a single bin).
    """

    def __init__(self, name: str, block: CIDRBlock):
        self.name = name
        self.block = block
        self._bin_count = max(1, block.size // 256)
        self._probe_counts = np.zeros(self._bin_count, dtype=np.int64)
        # Unique (source, /24-bin) pairs accumulate as packed uint64s
        # and deduplicate lazily; chunks merge once the pending volume
        # crosses PAIR_COMPACT_THRESHOLD so long runs stay bounded.
        self._pair_chunks: list[np.ndarray] = []
        self._pending_pairs = 0
        self._unique_pairs: Optional[np.ndarray] = None

    @property
    def num_slash24(self) -> int:
        """Number of /24 bins inside the block."""
        return self._bin_count

    def observe(self, sources: np.ndarray, targets: np.ndarray) -> int:
        """Record the probes that land inside this block.

        Returns how many of the given probes the sensor saw.
        """
        sources = np.asarray(sources, dtype=np.uint32).ravel()
        targets = np.asarray(targets, dtype=np.uint32).ravel()
        inside = self.block.contains_array(targets)
        if not inside.any():
            return 0
        return self.ingest(sources[inside], targets[inside])

    def ingest(self, hit_sources: np.ndarray, hit_targets: np.ndarray) -> int:
        """Record probes already known to land inside this block.

        The fast path behind :class:`~repro.sensors.index.SensorIndex`:
        the shared dispatch already proved containment, so this skips
        the per-sensor membership scan.  Callers must guarantee every
        target lies inside :attr:`block`.
        """
        if not len(hit_targets):
            return 0
        bins = ((hit_targets - np.uint32(self.block.first)) >> np.uint32(8)).astype(
            np.int64
        )
        np.add.at(self._probe_counts, bins, 1)
        packed = (bins.astype(np.uint64) << np.uint64(32)) | hit_sources.astype(
            np.uint64
        )
        chunk = np.unique(packed)
        self._pair_chunks.append(chunk)
        self._pending_pairs += len(chunk)
        self._unique_pairs = None
        if len(self._pair_chunks) > 1 and self._pending_pairs >= PAIR_COMPACT_THRESHOLD:
            self._compact_pairs()
        return int(len(hit_targets))

    def _compact_pairs(self) -> None:
        """Merge pending pair chunks into one deduplicated baseline."""
        merged = np.unique(np.concatenate(self._pair_chunks))
        self._pair_chunks = [merged]
        self._pending_pairs = 0

    def _pairs(self) -> np.ndarray:
        if self._unique_pairs is None:
            if self._pair_chunks:
                self._compact_pairs()
                self._unique_pairs = self._pair_chunks[0]
            else:
                self._unique_pairs = np.empty(0, dtype=np.uint64)
        return self._unique_pairs

    @property
    def total_probes(self) -> int:
        """All probes observed."""
        return int(self._probe_counts.sum())

    def probes_by_slash24(self) -> np.ndarray:
        """Probe count per /24 bin (index 0 = first /24 of the block)."""
        return self._probe_counts.copy()

    def unique_sources_by_slash24(self) -> np.ndarray:
        """Unique source-address count per /24 bin.

        This is the y-axis of the paper's Figures 1, 2 and 4(a).
        """
        pairs = self._pairs()
        counts = np.zeros(self._bin_count, dtype=np.int64)
        if len(pairs):
            bins = (pairs >> np.uint64(32)).astype(np.int64)
            unique_bins, bin_counts = np.unique(bins, return_counts=True)
            counts[unique_bins] = bin_counts
        return counts

    def unique_sources_total(self) -> int:
        """Unique sources seen anywhere in the block."""
        pairs = self._pairs()
        if not len(pairs):
            return 0
        return len(np.unique(pairs & np.uint64(0xFFFFFFFF)))

    def absorb(self, other: "DarknetSensor") -> None:
        """Fold another sensor's observations into this one.

        The sharded engine's merge step: pool workers run clones of
        this sensor, each ingesting a disjoint slice of the probe
        stream (shard boundaries are /24-aligned, so no /24 bin is
        split), and the driver absorbs their state back.  Counts add
        and pair chunks concatenate — the same commutative aggregates
        ``ingest`` maintains, so the merged state equals one sensor
        having seen every probe.
        """
        if (
            other.block.first != self.block.first
            or other.block.last != self.block.last
        ):
            raise ValueError(
                f"cannot absorb sensor on {other.block} into {self.block}"
            )
        self._probe_counts += other._probe_counts
        if other._pair_chunks:
            self._pair_chunks.extend(other._pair_chunks)
            self._pending_pairs += sum(
                len(chunk) for chunk in other._pair_chunks
            )
            self._unique_pairs = None
            if self._pending_pairs >= PAIR_COMPACT_THRESHOLD:
                self._compact_pairs()

    def reset(self) -> None:
        """Clear all recorded observations."""
        self._probe_counts[:] = 0
        self._pair_chunks = []
        self._pending_pairs = 0
        self._unique_pairs = None

    # -- checkpoint support -------------------------------------------

    def state_snapshot(self) -> dict:
        """Copy of the observation state, without compacting.

        Chunk layout is internal bookkeeping — two states with
        different chunkings answer every query identically — so the
        snapshot preserves the chunks as-is rather than forcing a
        merge on the checkpoint path.
        """
        return {
            "probe_counts": self._probe_counts.copy(),
            "pair_chunks": [chunk.copy() for chunk in self._pair_chunks],
            "pending_pairs": int(self._pending_pairs),
        }

    def state_restore(self, snapshot: dict) -> None:
        """Overwrite the observation state from a snapshot."""
        counts = np.asarray(snapshot["probe_counts"], dtype=np.int64)
        if len(counts) != self._bin_count:
            raise ValueError(
                f"DarknetSensor.state_restore: snapshot has "
                f"{len(counts)} /24 bins, sensor {self.name!r} has "
                f"{self._bin_count}"
            )
        self._probe_counts[:] = counts
        self._pair_chunks = [
            np.asarray(chunk, dtype=np.uint64).copy()
            for chunk in snapshot["pair_chunks"]
        ]
        self._pending_pairs = int(snapshot["pending_pairs"])
        self._unique_pairs = None

    @staticmethod
    def merge_snapshots(snapshots: list) -> dict:
        """Fold per-shard snapshots of one sensor into one snapshot.

        The data-only analogue of :meth:`absorb`: shard boundaries
        are /24-aligned, so each /24 bin's probes all came from one
        shard — counts add and pair chunks concatenate exactly.  Used
        when a pool-mode checkpoint (per-shard sensor clones) is
        restored into an in-process run whose shards share a single
        sensor object.
        """
        if not snapshots:
            raise ValueError("merge_snapshots: need at least one snapshot")
        merged = {
            "probe_counts": np.asarray(
                snapshots[0]["probe_counts"], dtype=np.int64
            ).copy(),
            "pair_chunks": [
                np.asarray(chunk, dtype=np.uint64)
                for snapshot in snapshots
                for chunk in snapshot["pair_chunks"]
            ],
            "pending_pairs": sum(
                int(snapshot["pending_pairs"]) for snapshot in snapshots
            ),
        }
        for snapshot in snapshots[1:]:
            merged["probe_counts"] += np.asarray(
                snapshot["probe_counts"], dtype=np.int64
            )
        return merged


#: Anonymized IMS blocks from the paper with their published sizes.
#: True locations are confidential; these synthetic positions are
#: chosen in distinct /8s, with M inside 192/8 (the paper localizes M
#: there — it is the block that catches the CodeRedII NAT hotspot).
IMS_BLOCK_SPECS: Mapping[str, str] = {
    "A": "61.11.22.0/23",
    "B": "81.44.55.0/24",
    "C": "96.77.88.0/24",
    "D": "133.101.0.0/20",
    "E": "145.66.8.0/21",
    "F": "162.33.4.0/22",
    "G": "176.99.2.0/25",
    "H": "185.23.0.0/18",
    "I": "203.128.0.0/17",
    "M": "192.5.40.0/22",
    "Z": "41.0.0.0/8",
}


def ims_standard_deployment(
    overrides: Optional[Mapping[str, str]] = None,
) -> list[DarknetSensor]:
    """The 11-block IMS-style deployment used throughout the paper.

    ``overrides`` replaces individual block positions (experiments
    that need specific address structure — e.g. the Slammer cycle
    study — pass their own positions for D, H, I).
    """
    specs = dict(IMS_BLOCK_SPECS)
    if overrides:
        specs.update(overrides)
    return [
        DarknetSensor(name, CIDRBlock.parse(text)) for name, text in specs.items()
    ]
