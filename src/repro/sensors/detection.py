"""Distributed detection logic.

The paper's argument: quorum/prevalence systems aggregate alerts from
many sensors and declare an outbreak when enough of them agree.
Hotspots starve most sensors, so the quorum is never reached even as
the worm saturates its target population.  These helpers turn raw
per-sensor alert times into the curves of Figure 5(b/c) and compute
quorum detection times.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np


@dataclass(frozen=True)
class AlertTimeline:
    """Fraction of sensors alerted as a function of time."""

    times: np.ndarray
    fraction_alerted: np.ndarray

    @classmethod
    def from_alert_times(
        cls, alert_times: np.ndarray, horizon: float, step: float = 1.0
    ) -> "AlertTimeline":
        """Build the cumulative alert curve from per-sensor times."""
        grid = np.arange(0.0, horizon + step, step)
        alerted = np.asarray(alert_times, dtype=float)
        valid = alerted[~np.isnan(alerted)]
        fractions = np.searchsorted(np.sort(valid), grid, side="right") / max(
            len(alerted), 1
        )
        return cls(times=grid, fraction_alerted=fractions)

    def fraction_at(self, time: float) -> float:
        """Fraction alerted at (or before) ``time``."""
        index = int(np.searchsorted(self.times, time, side="right")) - 1
        if index < 0:
            return 0.0
        return float(self.fraction_alerted[index])

    def final_fraction(self) -> float:
        """Fraction alerted by the end of the horizon."""
        return float(self.fraction_alerted[-1]) if len(self.fraction_alerted) else 0.0


def quorum_detection_time(
    alert_times: np.ndarray, quorum_fraction: float
) -> Optional[float]:
    """When a quorum of sensors has alerted, or ``None`` if never.

    ``quorum_fraction`` is the fraction of *all* sensors (alerting or
    not) that must have alerted — the aggregation rule whose failure
    under hotspots is the paper's point.
    """
    if not 0.0 < quorum_fraction <= 1.0:
        raise ValueError("quorum fraction must be in (0, 1]")
    alert_times = np.asarray(alert_times, dtype=float)
    needed = math.ceil(quorum_fraction * len(alert_times))
    valid = np.sort(alert_times[~np.isnan(alert_times)])
    if len(valid) < needed or needed == 0:
        return None if needed else 0.0
    return float(valid[needed - 1])


def detection_lag(
    alert_times: np.ndarray,
    infection_times: Sequence[float],
    infected_fraction: float,
    quorum_fraction: float,
) -> Optional[float]:
    """Quorum detection time minus the time the worm reached a given
    infected fraction (negative = detected before that point).

    ``infection_times`` is the cumulative infection timestamp list
    (one entry per infection, sorted).
    """
    detection = quorum_detection_time(alert_times, quorum_fraction)
    if detection is None:
        return None
    infection_times = np.asarray(infection_times, dtype=float)
    index = min(
        int(math.ceil(infected_fraction * len(infection_times))),
        len(infection_times),
    )
    if index == 0:
        return detection
    milestone = float(np.sort(infection_times)[index - 1])
    return detection - milestone
