"""Shared sensor dispatch: one membership pass for every sensor.

The simulator's delivered-probe batch used to be re-scanned by every
darknet sensor and every sensor grid — O(sensors × probes) per tick,
with the paper's IMS deployment alone contributing eleven full-batch
scans.  :class:`SensorIndex` merges every monitored interval (darknet
blocks, grid /24 runs) into sorted interval tables, answers "which
sensor owns this probe?" with one bucketed interval-locate per batch
(:class:`repro.net.kernels.IntervalLocator`), and scatters only the
hits to each sensor's ``ingest`` fast path.

Monitored intervals may overlap (a grid /24 inside a darknet block,
two overlapping darknet sensors): a probe must then reach *every*
covering sensor, exactly as the per-sensor loop did.  Overlapping
intervals are assigned to separate *layers* — each layer is a
disjoint interval table — and the batch makes one pass per layer.
Non-overlapping deployments (the common case) compile to a single
layer, so the whole sensor substrate costs one pass per tick.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Union

import numpy as np

from repro.net.kernels import IntervalLocator
from repro.sensors.darknet import DarknetSensor
from repro.sensors.deployment import SensorGrid

_Owner = Union[DarknetSensor, SensorGrid]


@dataclass(frozen=True)
class _Layer:
    """One disjoint set of monitored intervals."""

    starts: np.ndarray  # uint64, sorted
    ends: np.ndarray  # uint32, inclusive
    owners: np.ndarray  # int64 index into the owner list
    locator: IntervalLocator


def _grid_intervals(grid: SensorGrid) -> list[tuple[int, int]]:
    """The grid's /24s as maximal contiguous address intervals."""
    prefixes = grid.prefixes.astype(np.int64)
    breaks = np.flatnonzero(np.diff(prefixes) != 1)
    first = prefixes[np.concatenate([[0], breaks + 1])]
    last = prefixes[np.concatenate([breaks, [len(prefixes) - 1]])]
    return [
        (int(lo) << 8, ((int(hi) + 1) << 8) - 1)
        for lo, hi in zip(first, last)
    ]


class SensorIndex:
    """Merged interval table over darknet sensors and sensor grids."""

    def __init__(
        self,
        sensors: Sequence[DarknetSensor] = (),
        grids: Sequence[SensorGrid] = (),
        within: Optional[tuple[int, int]] = None,
    ):
        """Build the merged table; ``within`` clips it to one shard.

        ``within`` is a half-open address interval ``[lo, hi)``:
        monitored intervals are intersected with it (and dropped when
        the intersection is empty), so a shard's index sees exactly
        the probes the exchange routes to it.  Shard boundaries are
        /24-aligned, so clipping never splits a grid /24 or a darknet
        /24 bin — per-shard sensor observations stay mergeable.
        """
        self._owners: list[_Owner] = list(sensors) + list(grids)
        intervals: list[tuple[int, int, int]] = []
        for owner_id, sensor in enumerate(sensors):
            intervals.append((sensor.block.first, sensor.block.last, owner_id))
        grid_base = len(list(sensors))
        for offset, grid in enumerate(grids):
            for start, end in _grid_intervals(grid):
                intervals.append((start, end, grid_base + offset))
        self._grid_base = grid_base
        if within is not None:
            lo, hi = within
            intervals = [
                (max(start, lo), min(end, hi - 1), owner_id)
                for start, end, owner_id in intervals
                if max(start, lo) <= min(end, hi - 1)
            ]

        # Greedy layering: intervals sorted by start go into the first
        # layer whose last interval ends before they begin, so each
        # layer stays disjoint and the layer count equals the maximum
        # overlap depth (1 for non-overlapping deployments).
        layer_rows: list[list[tuple[int, int, int]]] = []
        layer_last_end: list[int] = []
        for start, end, owner_id in sorted(intervals):
            for layer_id, last_end in enumerate(layer_last_end):
                if last_end < start:
                    layer_rows[layer_id].append((start, end, owner_id))
                    layer_last_end[layer_id] = end
                    break
            else:
                layer_rows.append([(start, end, owner_id)])
                layer_last_end.append(end)
        self._layers = []
        for rows in layer_rows:
            starts = np.array([row[0] for row in rows], dtype=np.uint64)
            self._layers.append(
                _Layer(
                    starts=starts,
                    ends=np.array([row[1] for row in rows], dtype=np.uint32),
                    owners=np.array([row[2] for row in rows], dtype=np.int64),
                    locator=IntervalLocator(starts),
                )
            )

    @property
    def num_owners(self) -> int:
        """Sensors plus grids behind this index."""
        return len(self._owners)

    @property
    def num_layers(self) -> int:
        """Disjoint passes per dispatched batch (1 = no overlaps)."""
        return len(self._layers)

    @property
    def num_intervals(self) -> int:
        """Total monitored intervals across all layers."""
        return sum(len(layer.starts) for layer in self._layers)

    def dispatch(
        self, sources: np.ndarray, targets: np.ndarray, time: float
    ) -> int:
        """Route one delivered batch to every sensor that covers it.

        Equivalent to calling every sensor's ``observe`` on the full
        batch (each sensor sees exactly its hits, in batch order);
        returns the total number of probe observations recorded.
        """
        targets = np.asarray(targets, dtype=np.uint32).ravel()
        sources = np.asarray(sources, dtype=np.uint32).ravel()
        if not len(targets) or not self._layers:
            return 0
        observed = 0
        for layer in self._layers:
            slot = layer.locator.locate(targets)
            # slot == -1 wraps to the last interval's end under numpy
            # negative indexing; the `slot >= 0` term masks those out.
            hit = (slot >= 0) & (targets <= layer.ends[slot])
            if not hit.any():
                continue
            hit_positions = np.flatnonzero(hit)
            hit_owners = layer.owners[slot[hit_positions]]
            observed += self._scatter(
                sources, targets, time, hit_positions, hit_owners
            )
        return observed

    def _scatter(
        self,
        sources: np.ndarray,
        targets: np.ndarray,
        time: float,
        hit_positions: np.ndarray,
        hit_owners: np.ndarray,
    ) -> int:
        """Deliver one layer's hits to their owners, in batch order."""
        observed = 0
        for owner_id in np.unique(hit_owners):
            chosen = hit_positions[hit_owners == owner_id]
            owner = self._owners[owner_id]
            if owner_id >= self._grid_base:
                observed += owner.ingest(targets[chosen], time)
            else:
                observed += owner.ingest(sources[chosen], targets[chosen])
        return observed

    def partition_components(self) -> list[tuple[np.ndarray, np.ndarray]]:
        """Each layer as a partition: ``(starts, owner_per_interval)``.

        Gaps between monitored intervals become explicit ``-1``-owner
        intervals, so ``owner_per_interval[locate(addrs)]`` answers
        ownership without the inclusive-end check ``dispatch`` needs.
        Feed these to :class:`repro.net.kernels.MergedPartition` and
        route batches through :meth:`dispatch_from_owner_slots`.
        """
        components = []
        for layer in self._layers:
            interval_ends = layer.ends.astype(np.uint64) + np.uint64(1)
            bounds = np.unique(
                np.concatenate(
                    [
                        np.zeros(1, dtype=np.uint64),
                        layer.starts,
                        interval_ends,
                    ]
                )
            )
            bounds = bounds[bounds < (1 << 32)]
            slot = (
                np.searchsorted(layer.starts, bounds, side="right") - 1
            )
            inside = (slot >= 0) & (
                bounds <= layer.ends.astype(np.uint64)[slot]
            )
            owners = np.where(inside, layer.owners[slot], -1)
            components.append((bounds, owners.astype(np.int64)))
        return components

    def dispatch_from_owner_slots(
        self,
        sources: np.ndarray,
        targets: np.ndarray,
        time: float,
        owners_per_layer: Sequence[np.ndarray],
    ) -> int:
        """Route a batch whose ownership is already resolved.

        ``owners_per_layer`` holds, per layer (the order of
        :meth:`partition_components`), the owner id of each probe or
        ``-1`` — typically a merged-partition value table indexed by
        one shared locate.  Observation order per owner matches
        :meth:`dispatch` exactly.
        """
        if not len(targets) or not self._layers:
            return 0
        observed = 0
        for hit_owners in owners_per_layer:
            hit_positions = np.flatnonzero(hit_owners >= 0)
            if not len(hit_positions):
                continue
            observed += self._scatter(
                sources, targets, time, hit_positions, hit_owners[hit_positions]
            )
        return observed
