"""Grids of small /24 sensors and placement strategies.

Figure 5's detection experiments deploy thousands of /24 sensors and
alert each one after it observes ``n`` worm payloads.  A grid keeps
every sensor's state in parallel arrays so observing a million-probe
batch is a single ``searchsorted``.
"""

from __future__ import annotations

from typing import Iterable, Optional

import numpy as np

from repro.net.cidr import BlockSet, CIDRBlock


class SensorGrid:
    """Many /24 sensors with threshold alerting.

    Parameters
    ----------
    slash24_prefixes:
        The ``address >> 8`` prefix of each sensor's /24 block.
        Duplicate prefixes are collapsed.
    alert_threshold:
        A sensor alerts once it has observed this many worm payloads
        ("our detector ... was set to generate an alert after
        observing 5 threat payloads").
    """

    def __init__(self, slash24_prefixes: np.ndarray, alert_threshold: int = 5):
        if alert_threshold < 1:
            raise ValueError("alert threshold must be at least 1")
        prefixes = np.unique(np.asarray(slash24_prefixes, dtype=np.uint32))
        if len(prefixes) == 0:
            raise ValueError("a sensor grid needs at least one sensor")
        if prefixes.max() >= (1 << 24):
            raise ValueError("slash24 prefixes are 24-bit values (addr >> 8)")
        self._prefixes = prefixes
        self.alert_threshold = alert_threshold
        self._payload_counts = np.zeros(len(prefixes), dtype=np.int64)
        self._alert_times = np.full(len(prefixes), np.nan)

    @property
    def num_sensors(self) -> int:
        """Number of distinct /24 sensors in the grid."""
        return len(self._prefixes)

    @property
    def prefixes(self) -> np.ndarray:
        """Sorted /24 prefixes (``addr >> 8``)."""
        return self._prefixes

    def monitored_addresses(self) -> int:
        """Total addresses under observation (256 per sensor)."""
        return self.num_sensors * 256

    def observe(self, targets: np.ndarray, time: float) -> int:
        """Count probes landing on sensors; stamp new alerts at ``time``.

        Returns the number of observed probes.
        """
        targets = np.asarray(targets, dtype=np.uint32).ravel()
        if not len(targets):
            return 0
        probe_prefixes = targets >> np.uint32(8)
        idx = np.searchsorted(self._prefixes, probe_prefixes)
        idx = np.clip(idx, 0, len(self._prefixes) - 1)
        hit = self._prefixes[idx] == probe_prefixes
        if not hit.any():
            return 0
        return self.ingest(targets[hit], time)

    def ingest(self, hit_targets: np.ndarray, time: float) -> int:
        """Record probes already known to land on grid sensors.

        The fast path behind :class:`~repro.sensors.index.SensorIndex`:
        callers must guarantee every target's /24 is one of this
        grid's sensors, so the batch-wide membership scan is skipped.
        """
        if not len(hit_targets):
            return 0
        probe_prefixes = np.asarray(hit_targets, dtype=np.uint32) >> np.uint32(8)
        idx = np.searchsorted(self._prefixes, probe_prefixes)
        sensor_ids, hit_counts = np.unique(idx, return_counts=True)
        below_before = self._payload_counts[sensor_ids] < self.alert_threshold
        self._payload_counts[sensor_ids] += hit_counts
        crossed = below_before & (
            self._payload_counts[sensor_ids] >= self.alert_threshold
        )
        newly_alerted = sensor_ids[crossed]
        self._alert_times[newly_alerted] = time
        return int(len(hit_targets))

    def payload_counts(self) -> np.ndarray:
        """Observed payloads per sensor."""
        return self._payload_counts.copy()

    def alert_times(self) -> np.ndarray:
        """Alert time per sensor (NaN = never alerted)."""
        return self._alert_times.copy()

    def fraction_alerted(self, at_time: Optional[float] = None) -> float:
        """Fraction of sensors alerted (optionally: by ``at_time``)."""
        times = self._alert_times
        alerted = ~np.isnan(times)
        if at_time is not None:
            alerted &= times <= at_time
        return float(alerted.mean())

    def absorb(self, other: "SensorGrid") -> None:
        """Fold another grid's observations into this one.

        The sharded engine's merge step: each pool worker's clone
        observed a disjoint subset of this grid's /24 sensors (shard
        boundaries are /24-aligned, so a sensor's probes all land in
        one shard), making the merge exact — counts add, and each
        sensor's alert time comes from whichever grid saw it cross
        the threshold.
        """
        if not np.array_equal(other._prefixes, self._prefixes):
            raise ValueError("cannot absorb a grid with different sensors")
        if other.alert_threshold != self.alert_threshold:
            raise ValueError("cannot absorb a grid with a different threshold")
        self._payload_counts += other._payload_counts
        theirs = other._alert_times
        take = ~np.isnan(theirs) & (
            np.isnan(self._alert_times) | (theirs < self._alert_times)
        )
        self._alert_times[take] = theirs[take]

    def reset(self) -> None:
        """Clear counts and alerts."""
        self._payload_counts[:] = 0
        self._alert_times[:] = np.nan

    # -- checkpoint support -------------------------------------------

    def state_snapshot(self) -> dict:
        """Copy of the per-sensor counts and alert times."""
        return {
            "payload_counts": self._payload_counts.copy(),
            "alert_times": self._alert_times.copy(),
        }

    def state_restore(self, snapshot: dict) -> None:
        """Overwrite counts and alert times from a snapshot."""
        counts = np.asarray(snapshot["payload_counts"], dtype=np.int64)
        times = np.asarray(snapshot["alert_times"], dtype=np.float64)
        if len(counts) != len(self._prefixes) or len(times) != len(
            self._prefixes
        ):
            raise ValueError(
                f"SensorGrid.state_restore: snapshot covers "
                f"{len(counts)} sensors, this grid has "
                f"{len(self._prefixes)}"
            )
        self._payload_counts[:] = counts
        self._alert_times[:] = times

    @staticmethod
    def merge_snapshots(snapshots: list) -> dict:
        """Fold per-shard snapshots of one grid into one snapshot.

        The data-only analogue of :meth:`absorb`: each /24 sensor's
        probes all land in one shard, so counts add and each alert
        time is the element-wise earliest non-NaN.
        """
        if not snapshots:
            raise ValueError("merge_snapshots: need at least one snapshot")
        counts = np.asarray(
            snapshots[0]["payload_counts"], dtype=np.int64
        ).copy()
        times = np.asarray(
            snapshots[0]["alert_times"], dtype=np.float64
        ).copy()
        for snapshot in snapshots[1:]:
            counts += np.asarray(snapshot["payload_counts"], dtype=np.int64)
            theirs = np.asarray(snapshot["alert_times"], dtype=np.float64)
            take = ~np.isnan(theirs) & (np.isnan(times) | (theirs < times))
            times[take] = theirs[take]
        return {"payload_counts": counts, "alert_times": times}


def place_one_per_block(
    blocks: Iterable[CIDRBlock], rng: np.random.Generator
) -> np.ndarray:
    """One random /24 sensor inside each given block.

    The Figure 5(b) placement: "we randomly placed a /24 detector in
    each of the 4481 /16 networks with at least one vulnerable host."
    """
    prefixes = []
    for block in blocks:
        if block.prefix_len > 24:
            raise ValueError(f"block {block} is smaller than a /24")
        candidates = block.slash24_prefixes()
        prefixes.append(candidates[rng.integers(0, len(candidates))])
    if not prefixes:
        raise ValueError("no blocks given")
    return np.array(prefixes, dtype=np.uint32)


def place_random(
    count: int,
    rng: np.random.Generator,
    within: Optional[BlockSet] = None,
) -> np.ndarray:
    """``count`` random /24 sensors, optionally confined to a region.

    Used for Figure 5(c)'s "10,000 /24 sensors randomly throughout
    the IPv4 space" and "randomly inside the top 20 /8 networks".
    """
    if count <= 0:
        raise ValueError("count must be positive")
    if within is None:
        return rng.integers(0, 1 << 24, size=count, dtype=np.uint64).astype(np.uint32)
    addrs = within.random_addresses(count, rng)
    return (addrs >> np.uint32(8)).astype(np.uint32)


def place_within_blocks(
    blocks: Iterable[CIDRBlock],
    rng: np.random.Generator,
    exclude: Optional[BlockSet] = None,
) -> np.ndarray:
    """One random /24 inside each block, skipping excluded blocks.

    The Figure 5(c) targeted placement: one sensor in each /16 of
    192/8, avoiding 192.168/16.
    """
    prefixes = []
    for block in blocks:
        if exclude is not None and block.first in exclude:
            continue
        candidates = block.slash24_prefixes()
        prefixes.append(candidates[rng.integers(0, len(candidates))])
    if not prefixes:
        raise ValueError("every candidate block was excluded")
    return np.array(prefixes, dtype=np.uint32)
