"""Probe trace recording and persistence.

A trace is a columnar set of probe events: timestamp, source address,
destination address, and a worm id (small int mapped through a name
table).  Columns are numpy arrays, so a month-scale simulated trace
stays compact and every query is vectorized.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Union

import numpy as np

from repro.net.cidr import BlockSet, CIDRBlock

_CHUNK = 1 << 20


@dataclass(frozen=True)
class ProbeTrace:
    """An immutable columnar probe trace.

    Attributes
    ----------
    times:
        Event timestamps (seconds, float64), non-decreasing if
        produced by :class:`TraceRecorder`.
    sources, targets:
        Addresses (``uint32``).
    worm_ids:
        Index into :attr:`worm_names` per event.
    worm_names:
        Name table.
    """

    times: np.ndarray
    sources: np.ndarray
    targets: np.ndarray
    worm_ids: np.ndarray
    worm_names: tuple[str, ...]

    def __post_init__(self) -> None:
        lengths = {
            len(self.times),
            len(self.sources),
            len(self.targets),
            len(self.worm_ids),
        }
        if len(lengths) != 1:
            raise ValueError("trace columns must have equal lengths")
        if len(self.worm_ids) and self.worm_ids.max() >= len(self.worm_names):
            raise ValueError("worm id out of range of the name table")

    def __len__(self) -> int:
        return len(self.times)

    @property
    def duration(self) -> float:
        """Span between first and last event (0 for empty traces)."""
        if not len(self.times):
            return 0.0
        return float(self.times.max() - self.times.min())

    def _select(self, mask: np.ndarray) -> "ProbeTrace":
        return ProbeTrace(
            times=self.times[mask],
            sources=self.sources[mask],
            targets=self.targets[mask],
            worm_ids=self.worm_ids[mask],
            worm_names=self.worm_names,
        )

    def between(self, start: float, end: float) -> "ProbeTrace":
        """Events with ``start <= time < end``."""
        return self._select((self.times >= start) & (self.times < end))

    def to_block(self, block: Union[CIDRBlock, BlockSet]) -> "ProbeTrace":
        """Events whose *target* lies inside a block (set)."""
        return self._select(block.contains_array(self.targets))

    def from_block(self, block: Union[CIDRBlock, BlockSet]) -> "ProbeTrace":
        """Events whose *source* lies inside a block (set)."""
        return self._select(block.contains_array(self.sources))

    def for_worm(self, name: str) -> "ProbeTrace":
        """Events attributed to one worm."""
        if name not in self.worm_names:
            raise KeyError(f"unknown worm {name!r}")
        worm_id = self.worm_names.index(name)
        return self._select(self.worm_ids == worm_id)

    def unique_sources(self) -> np.ndarray:
        """Distinct source addresses."""
        return np.unique(self.sources)

    def targets_by_slash24(self) -> tuple[np.ndarray, np.ndarray]:
        """(/24 prefixes, probe counts) over the targets."""
        prefixes = self.targets >> np.uint32(8)
        return np.unique(prefixes, return_counts=True)

    def save(self, path: Union[str, Path]) -> None:
        """Persist to compressed NPZ."""
        np.savez_compressed(
            path,
            times=self.times,
            sources=self.sources,
            targets=self.targets,
            worm_ids=self.worm_ids,
            worm_names=np.array(self.worm_names, dtype=object),
        )

    @classmethod
    def load(cls, path: Union[str, Path]) -> "ProbeTrace":
        """Load a trace saved with :meth:`save`."""
        with np.load(path, allow_pickle=True) as data:
            return cls(
                times=data["times"],
                sources=data["sources"].astype(np.uint32),
                targets=data["targets"].astype(np.uint32),
                worm_ids=data["worm_ids"],
                worm_names=tuple(data["worm_names"].tolist()),
            )


class TraceRecorder:
    """Append-only probe recorder with chunked storage.

    Use as the capture point inside a simulation loop::

        recorder = TraceRecorder()
        recorder.record(now, sources, targets, worm="codered2")
        trace = recorder.finish()
    """

    def __init__(self) -> None:
        self._chunks: list[tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]] = []
        self._worm_names: list[str] = []
        self._count = 0

    def __len__(self) -> int:
        return self._count

    def _worm_id(self, name: str) -> int:
        try:
            return self._worm_names.index(name)
        except ValueError:
            self._worm_names.append(name)
            return len(self._worm_names) - 1

    def record(
        self,
        time: float,
        sources: np.ndarray,
        targets: np.ndarray,
        worm: str = "unknown",
    ) -> None:
        """Append one batch of probes sharing a timestamp and worm."""
        sources = np.asarray(sources, dtype=np.uint32).ravel()
        targets = np.asarray(targets, dtype=np.uint32).ravel()
        if len(sources) != len(targets):
            raise ValueError("sources and targets must align")
        if not len(targets):
            return
        worm_id = self._worm_id(worm)
        self._chunks.append(
            (
                np.full(len(targets), time, dtype=np.float64),
                sources.copy(),
                targets.copy(),
                np.full(len(targets), worm_id, dtype=np.int16),
            )
        )
        self._count += len(targets)

    # -- checkpoint support -------------------------------------------

    def state_snapshot(self) -> dict:
        """Copy of the recorded chunks and the worm name table.

        Chunk arrays are never mutated after :meth:`record` appends
        them, so sharing them with the snapshot would be safe — they
        are copied anyway so a snapshot's lifetime is independent of
        the recorder's.
        """
        return {
            "chunks": [
                tuple(column.copy() for column in chunk)
                for chunk in self._chunks
            ],
            "worm_names": list(self._worm_names),
            "count": int(self._count),
        }

    def state_restore(self, snapshot: dict) -> None:
        """Overwrite the recorded events from a snapshot."""
        self._chunks = [
            tuple(np.asarray(column) for column in chunk)
            for chunk in snapshot["chunks"]
        ]
        self._worm_names = list(snapshot["worm_names"])
        self._count = int(snapshot["count"])

    def finish(self) -> ProbeTrace:
        """Assemble the immutable trace (recorder stays usable)."""
        if not self._chunks:
            empty32 = np.empty(0, dtype=np.uint32)
            return ProbeTrace(
                times=np.empty(0, dtype=np.float64),
                sources=empty32,
                targets=empty32.copy(),
                worm_ids=np.empty(0, dtype=np.int16),
                worm_names=tuple(self._worm_names) or ("unknown",),
            )
        times, sources, targets, worm_ids = (
            np.concatenate(cols) for cols in zip(*self._chunks)
        )
        return ProbeTrace(
            times=times,
            sources=sources,
            targets=targets,
            worm_ids=worm_ids,
            worm_names=tuple(self._worm_names),
        )
