"""Replaying stored traces into sensors.

Separates measurement from analysis the way the IMS project did: a
trace captured once can be replayed into any sensor configuration —
different block positions, thresholds, or placements — without
re-running the outbreak.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.sensors.darknet import DarknetSensor
from repro.sensors.deployment import SensorGrid
from repro.traces.record import ProbeTrace


def replay_into_sensors(
    trace: ProbeTrace, sensors: Sequence[DarknetSensor]
) -> dict[str, int]:
    """Feed a trace to darknet sensors; returns probes seen per sensor.

    Event order does not matter for darknet accounting (counts and
    unique-source sets are order-independent), so the whole trace is
    delivered in one vectorized batch per sensor.
    """
    seen: dict[str, int] = {}
    for sensor in sensors:
        seen[sensor.name] = sensor.observe(trace.sources, trace.targets)
    return seen


def replay_into_grid(
    trace: ProbeTrace,
    grid: SensorGrid,
    batch_seconds: float = 1.0,
) -> int:
    """Feed a trace to a sensor grid, preserving alert timing.

    Alert *times* depend on event order, so the trace is replayed in
    timestamp order, batched into ``batch_seconds`` windows.  Returns
    the number of probes the grid observed.
    """
    if batch_seconds <= 0:
        raise ValueError("batch_seconds must be positive")
    if not len(trace):
        return 0
    order = np.argsort(trace.times, kind="stable")
    times = trace.times[order]
    targets = trace.targets[order]
    observed = 0
    start = float(times[0])
    end = float(times[-1])
    window_start = start
    while window_start <= end:
        window_end = window_start + batch_seconds
        lo = np.searchsorted(times, window_start, side="left")
        hi = np.searchsorted(times, window_end, side="left")
        if hi > lo:
            observed += grid.observe(targets[lo:hi], time=window_end)
        window_start = window_end
    return observed
