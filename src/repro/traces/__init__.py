"""Probe-trace recording, storage, and replay.

The measurement side of the paper is built on stored darknet traces
(two months of IMS data).  This package provides the equivalent
plumbing for simulated data: an append-only structured recorder for
probe events, compact NPZ persistence, time/space filtering, and
replay into sensors — so an experiment can be run once, archived, and
re-analyzed without re-simulating.
"""

from repro.traces.record import ProbeTrace, TraceRecorder
from repro.traces.replay import replay_into_grid, replay_into_sensors

__all__ = [
    "ProbeTrace",
    "TraceRecorder",
    "replay_into_grid",
    "replay_into_sensors",
]
